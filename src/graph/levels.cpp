#include "graph/levels.h"

#include <algorithm>
#include <utility>

#include "support/status.h"

namespace capellini {

LevelSets BuildLevelSetsFromLevelOf(std::vector<Idx> level_of) {
  const Idx n = static_cast<Idx>(level_of.size());
  Idx max_level = -1;
  for (Idx i = 0; i < n; ++i) {
    max_level = std::max(max_level, level_of[static_cast<std::size_t>(i)]);
  }

  LevelSets sets;
  sets.level_of = std::move(level_of);
  const Idx num_levels = n == 0 ? 0 : max_level + 1;
  sets.level_ptr.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (Idx i = 0; i < n; ++i) {
    ++sets.level_ptr[static_cast<std::size_t>(
                         sets.level_of[static_cast<std::size_t>(i)]) +
                     1];
  }
  for (Idx k = 0; k < num_levels; ++k) {
    sets.level_ptr[static_cast<std::size_t>(k) + 1] +=
        sets.level_ptr[static_cast<std::size_t>(k)];
  }

  sets.order.resize(static_cast<std::size_t>(n));
  std::vector<Idx> cursor(sets.level_ptr.begin(), sets.level_ptr.end() - 1);
  for (Idx i = 0; i < n; ++i) {
    const Idx level = sets.level_of[static_cast<std::size_t>(i)];
    sets.order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(level)]++)] = i;
  }
  return sets;
}

LevelSets ComputeLevelSets(const Csr& lower) {
  CAPELLINI_CHECK_MSG(lower.IsLowerTriangularWithDiagonal(),
                      "level sets need a lower-triangular matrix with diagonal");
  const Idx n = lower.rows();

  std::vector<Idx> level_of(static_cast<std::size_t>(n), 0);

  // Rows only depend on earlier rows, so one ascending pass suffices.
  for (Idx i = 0; i < n; ++i) {
    Idx level = 0;
    const auto cols = lower.RowCols(i);
    // Last entry is the diagonal; strictly-lower entries precede it.
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      level = std::max(level,
                       level_of[static_cast<std::size_t>(cols[j])] + 1);
    }
    level_of[static_cast<std::size_t>(i)] = level;
  }
  return BuildLevelSetsFromLevelOf(std::move(level_of));
}

Csr GatherRowsByLevel(const Csr& lower, const LevelSets& levels) {
  const Idx n = lower.rows();
  CAPELLINI_CHECK(levels.order.size() == static_cast<std::size_t>(n));

  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (Idx k = 0; k < n; ++k) {
    row_ptr[static_cast<std::size_t>(k) + 1] =
        row_ptr[static_cast<std::size_t>(k)] +
        lower.RowLen(levels.order[static_cast<std::size_t>(k)]);
  }
  std::vector<Idx> col_idx(static_cast<std::size_t>(lower.nnz()));
  std::vector<Val> val(static_cast<std::size_t>(lower.nnz()));
  for (Idx k = 0; k < n; ++k) {
    const Idx src = levels.order[static_cast<std::size_t>(k)];
    const auto cols = lower.RowCols(src);
    const auto vals = lower.RowVals(src);
    std::size_t dst = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(k)]);
    for (std::size_t j = 0; j < cols.size(); ++j, ++dst) {
      col_idx[dst] = cols[j];
      val[dst] = vals[j];
    }
  }
  return Csr(n, lower.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(val));
}

PermutedSystem PermuteSystemByLevel(const Csr& lower,
                                    const LevelSets& levels) {
  const Idx n = lower.rows();
  CAPELLINI_CHECK(levels.order.size() == static_cast<std::size_t>(n));

  PermutedSystem out;
  out.order = levels.order;
  out.inverse.assign(static_cast<std::size_t>(n), 0);
  for (Idx k = 0; k < n; ++k) {
    out.inverse[static_cast<std::size_t>(
        out.order[static_cast<std::size_t>(k)])] = k;
  }

  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (Idx k = 0; k < n; ++k) {
    row_ptr[static_cast<std::size_t>(k) + 1] =
        row_ptr[static_cast<std::size_t>(k)] +
        lower.RowLen(out.order[static_cast<std::size_t>(k)]);
  }
  std::vector<Idx> col_idx(static_cast<std::size_t>(lower.nnz()));
  std::vector<Val> val(static_cast<std::size_t>(lower.nnz()));
  std::vector<std::pair<Idx, Val>> entries;
  for (Idx k = 0; k < n; ++k) {
    const Idx src = out.order[static_cast<std::size_t>(k)];
    const auto cols = lower.RowCols(src);
    const auto vals = lower.RowVals(src);
    entries.clear();
    entries.reserve(cols.size());
    for (std::size_t j = 0; j < cols.size(); ++j) {
      entries.emplace_back(
          out.inverse[static_cast<std::size_t>(cols[j])], vals[j]);
    }
    // Renamed columns are no longer ascending; restore the CSR invariant
    // (sorted columns, diagonal last). Dependencies map to strictly smaller
    // levels and hence to indices < k, so the row stays lower-triangular
    // with the diagonal as its largest column.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t dst =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(k)]);
    for (const auto& [c, v] : entries) {
      col_idx[dst] = c;
      val[dst] = v;
      ++dst;
    }
  }
  out.matrix = Csr(n, lower.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(val));
  CAPELLINI_CHECK_MSG(out.matrix.IsLowerTriangularWithDiagonal(),
                      "symmetric level permutation must stay triangular");
  return out;
}

void PermuteVector(std::span<const Idx> order, std::span<const Val> in,
                   std::span<Val> out) {
  CAPELLINI_CHECK(in.size() == order.size() && out.size() == order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    out[k] = in[static_cast<std::size_t>(order[k])];
  }
}

void UnpermuteVector(std::span<const Idx> order, std::span<const Val> in,
                     std::span<Val> out) {
  CAPELLINI_CHECK(in.size() == order.size() && out.size() == order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    out[static_cast<std::size_t>(order[k])] = in[k];
  }
}

}  // namespace capellini
