#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "gen/rmat.h"
#include "host/serial.h"
#include "kernels/common.h"
#include "kernels/launch.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "sim/config.h"

namespace capellini::kernels {
namespace {

/// The matrix zoo for correctness sweeps. Includes the chain (maximum
/// intra-warp dependencies), fully parallel, banded, random, interleaved
/// level-structured (stress for Two-Phase) and graph-shaped cases.
Csr ZooMatrix(const std::string& name) {
  if (name == "diagonal") return MakeDiagonal(500);
  if (name == "bidiagonal") return MakeBidiagonal(300);
  if (name == "banded") {
    return MakeBanded({.rows = 400, .bandwidth = 40, .fill = 0.7,
                       .force_chain = true, .seed = 2});
  }
  if (name == "wide_rows") {
    return MakeBanded({.rows = 96, .bandwidth = 96, .fill = 0.9,
                       .force_chain = false, .seed = 3});
  }
  if (name == "random") {
    return MakeRandomLower({.rows = 1500, .avg_strict_nnz_per_row = 3.0,
                            .window = 0, .empty_row_fraction = 0.2,
                            .seed = 4});
  }
  if (name == "interleaved") {
    return MakeLevelStructured({.num_levels = 6, .components_per_level = 80,
                                .avg_nnz_per_row = 2.6, .size_jitter = 0.3,
                                .interleave = true, .seed = 5});
  }
  if (name == "level_wide") {
    return MakeLevelStructured({.num_levels = 3, .components_per_level = 700,
                                .avg_nnz_per_row = 2.2, .size_jitter = 0.2,
                                .interleave = false, .seed = 6});
  }
  if (name == "rmat") {
    return MakeRmatLower({.nodes = 1 << 11, .edges_per_node = 3.0,
                          .a = 0.57, .b = 0.19, .c = 0.19, .seed = 7});
  }
  if (name == "single_row") return MakeDiagonal(1);
  if (name == "two_rows") return MakeBidiagonal(2);
  CAPELLINI_CHECK_MSG(false, "unknown zoo matrix " + name);
  return {};
}

const std::vector<std::string>& ZooNames() {
  static const std::vector<std::string> names = {
      "diagonal", "bidiagonal", "banded",     "wide_rows", "random",
      "interleaved", "level_wide", "rmat",    "single_row", "two_rows"};
  return names;
}

/// Algorithms that must be correct on EVERY input.
const std::vector<DeviceAlgorithm>& CorrectAlgorithms() {
  static const std::vector<DeviceAlgorithm> algorithms = {
      DeviceAlgorithm::kSerialRow,
      DeviceAlgorithm::kLevelSet,
      DeviceAlgorithm::kSyncFreeCsc,
      DeviceAlgorithm::kSyncFreeWarpCsr,
      DeviceAlgorithm::kCusparseProxy,
      DeviceAlgorithm::kCapelliniTwoPhase,
      DeviceAlgorithm::kCapelliniWritingFirst,
      DeviceAlgorithm::kHybrid,
  };
  return algorithms;
}

class SolveCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, DeviceAlgorithm>> {
};

TEST_P(SolveCorrectness, MatchesSerialReference) {
  const auto& [matrix_name, algorithm] = GetParam();
  const Csr lower = ZooMatrix(matrix_name);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 99);

  auto result = SolveOnDevice(algorithm, lower, problem.b,
                              sim::TinyTestDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10)
      << DeviceAlgorithmName(algorithm) << " on " << matrix_name;

  // Cross-check against the host serial solver too.
  std::vector<Val> host_x(problem.b.size());
  ASSERT_TRUE(host::SolveSerial(lower, problem.b, host_x).ok());
  EXPECT_LE(MaxRelativeError(result->x, host_x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesAlgorithms, SolveCorrectness,
    ::testing::Combine(::testing::ValuesIn(ZooNames()),
                       ::testing::ValuesIn(CorrectAlgorithms())),
    [](const ::testing::TestParamInfo<SolveCorrectness::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      name += "_";
      name += DeviceAlgorithmName(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NaiveKernelTest, DeadlocksOnIntraWarpDependencies) {
  // A chain puts 31 intra-warp dependencies in every warp: the unbounded
  // busy-wait must deadlock (paper §3.3 Challenge 1).
  const Csr chain = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(chain, 1);
  sim::DeviceConfig config = sim::TinyTestDevice();
  config.no_progress_cycles = 30'000;
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniNaive, chain,
                              problem.b, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlock);
}

TEST(NaiveKernelTest, SucceedsWithoutIntraWarpDependencies) {
  // A diagonal matrix has no dependencies at all: even the naive kernel works.
  const Csr diag = MakeDiagonal(256);
  const ReferenceProblem problem = MakeReferenceProblem(diag, 2);
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniNaive, diag,
                              problem.b, sim::TinyTestDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-12);
}

TEST(LaunchTest, CapelliniNeedsNoPreprocessing) {
  const Csr matrix = ZooMatrix("random");
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 3);
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, matrix,
                              problem.b, sim::TinyTestDevice());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->preprocessing_ms, 0.0);

  auto levelset = SolveOnDevice(DeviceAlgorithm::kLevelSet, matrix, problem.b,
                                sim::TinyTestDevice());
  ASSERT_TRUE(levelset.ok());
  EXPECT_GT(levelset->preprocessing_ms, 0.0);
}

TEST(LaunchTest, LevelSetPaysPerLevelLaunchOverhead) {
  const Csr chain = MakeBidiagonal(200);  // 200 levels -> 200 launches
  const ReferenceProblem problem = MakeReferenceProblem(chain, 4);
  auto result = SolveOnDevice(DeviceAlgorithm::kLevelSet, chain, problem.b,
                              sim::TinyTestDevice());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.launches, 200u);
  EXPECT_GE(result->stats.cycles,
            200 * sim::TinyTestDevice().launch_overhead_cycles);
}

TEST(LaunchTest, RejectsNonTriangularInput) {
  Coo coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 1, 1.0);
  const Csr bad = CooToCsr(std::move(coo));
  const std::vector<Val> b = {1.0, 1.0};
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, bad, b,
                              sim::TinyTestDevice());
  EXPECT_FALSE(result.ok());
}

TEST(LaunchTest, RejectsWrongRhsSize) {
  const Csr matrix = MakeDiagonal(4);
  const std::vector<Val> b = {1.0};
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, matrix,
                              b, sim::TinyTestDevice());
  EXPECT_FALSE(result.ok());
}

TEST(LaunchTest, MetricsArePopulated) {
  const Csr matrix = ZooMatrix("level_wide");
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, matrix,
                              problem.b, sim::PascalGtx1080());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->exec_ms, 0.0);
  EXPECT_GT(result->gflops, 0.0);
  EXPECT_GT(result->bandwidth_gbs, 0.0);
  EXPECT_GT(result->stats.instructions, 0u);
  EXPECT_GT(result->stats.dram_bytes, 0u);
}

TEST(LaunchTest, HybridThresholdExtremesDegenerate) {
  // Threshold 0 -> everything warp-level; huge threshold -> everything
  // thread-level. Both must stay correct.
  const Csr matrix = ZooMatrix("banded");
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 6);
  for (const Idx threshold : {Idx{0}, Idx{1'000'000}}) {
    SolveOptions options;
    options.hybrid_row_length_threshold = threshold;
    auto result = SolveOnDevice(DeviceAlgorithm::kHybrid, matrix, problem.b,
                                sim::TinyTestDevice(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10)
        << "threshold " << threshold;
  }
}

TEST(LaunchTest, ThreadLevelUsesFarFewerWarpsThanWarpLevel) {
  const Csr matrix = ZooMatrix("level_wide");
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  auto capellini = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst,
                                 matrix, problem.b, sim::PascalGtx1080());
  auto syncfree = SolveOnDevice(DeviceAlgorithm::kSyncFreeCsc, matrix,
                                problem.b, sim::PascalGtx1080());
  ASSERT_TRUE(capellini.ok());
  ASSERT_TRUE(syncfree.ok());
  // Warp-level issues at least ~an order of magnitude more instructions on
  // short-row matrices (Figure 8a's shape).
  EXPECT_GT(syncfree->stats.instructions, 4 * capellini->stats.instructions);
}

TEST(KernelBuildersTest, AllKernelsValidate) {
  for (const auto& kernel :
       {BuildSerialRowKernel(), BuildLevelSetKernel(),
        BuildSyncFreeWarpCsrKernel(), BuildSyncFreeCscKernel(),
        BuildCapelliniNaiveKernel(), BuildCapelliniTwoPhaseKernel(),
        BuildCapelliniWritingFirstKernel(), BuildCusparseProxyKernel(),
        BuildHybridKernel()}) {
    EXPECT_TRUE(kernel.Validate().ok()) << kernel.name;
    EXPECT_GT(kernel.code.size(), 10u) << kernel.name;
  }
}

TEST(KernelBuildersTest, NamesAreStable) {
  EXPECT_STREQ(DeviceAlgorithmName(DeviceAlgorithm::kCapelliniWritingFirst),
               "Capellini");
  EXPECT_STREQ(DeviceAlgorithmName(DeviceAlgorithm::kSyncFreeCsc), "SyncFree");
  EXPECT_STREQ(DeviceAlgorithmName(DeviceAlgorithm::kCusparseProxy),
               "cuSPARSE");
  EXPECT_EQ(AllDeviceAlgorithms().size(), 9u);
}

}  // namespace
}  // namespace capellini::kernels
