// Tests for the execution-tracing subsystem (src/trace): non-perturbation of
// the simulation, deterministic Chrome export, stall attribution (including
// the paper's Two-Phase vs Writing-First busy-wait contrast), the solve-
// progress timeline on single- and multi-launch algorithms, and the kernel
// annotation metadata.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "kernels/common.h"
#include "kernels/launch.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "trace/attribution.h"
#include "trace/chrome_trace.h"
#include "trace/session.h"
#include "trace/sink.h"
#include "trace/timeline.h"

namespace capellini {
namespace {

using kernels::DeviceAlgorithm;
using kernels::SolveOnDevice;
using kernels::SolveOptions;

Csr InterleavedLevelMatrix() {
  // Interleaved level structure: consecutive rows belong to different levels,
  // so threads of one warp depend on each other — the stress case for
  // Two-Phase's intra-warp passes.
  return MakeLevelStructured({.num_levels = 6, .components_per_level = 80,
                              .avg_nnz_per_row = 2.6, .size_jitter = 0.3,
                              .interleave = true, .seed = 5});
}

Csr RandomMatrix(Idx rows = 1200) {
  return MakeRandomLower({.rows = rows, .avg_strict_nnz_per_row = 3.0,
                          .window = 0, .empty_row_fraction = 0.2, .seed = 4});
}

TEST(TraceNullSink, TracingDoesNotPerturbTheSimulation) {
  const Csr lower = RandomMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 99);

  auto plain = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                             problem.b, sim::TinyTestDevice());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  trace::TraceSession session;
  SolveOptions options;
  options.trace_sink = session.sink();
  auto traced = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                              problem.b, sim::TinyTestDevice(), options);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Sinks observe; they must not change timing, counters, or the solution.
  EXPECT_EQ(plain->stats.cycles, traced->stats.cycles);
  EXPECT_EQ(plain->stats.instructions, traced->stats.instructions);
  EXPECT_EQ(plain->stats.dram_transactions, traced->stats.dram_transactions);
  EXPECT_EQ(plain->stats.stall_slots, traced->stats.stall_slots);
  EXPECT_EQ(plain->x, traced->x);
}

TEST(TraceChrome, ByteIdenticalAcrossRuns) {
  const Csr lower = RandomMatrix(600);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 7);

  std::string json[2];
  for (std::string& out : json) {
    trace::TraceSession session;
    SolveOptions options;
    options.trace_sink = session.sink();
    auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniTwoPhase, lower,
                                problem.b, sim::TinyTestDevice(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    out = session.chrome().ToJson();
  }
  EXPECT_FALSE(json[0].empty());
  EXPECT_NE(json[0].find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json[0].find("\"cat\":\"warp\""), std::string::npos);
  EXPECT_EQ(json[0], json[1]) << "identical solves must serialize identically";
}

TEST(TraceAttribution, TwoPhaseBusyWaitsMoreThanWritingFirst) {
  const Csr lower = InterleavedLevelMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 13);

  trace::StallBuckets totals[2];
  const DeviceAlgorithm algorithms[2] = {
      DeviceAlgorithm::kCapelliniTwoPhase,
      DeviceAlgorithm::kCapelliniWritingFirst};
  for (int i = 0; i < 2; ++i) {
    trace::StallAttribution attribution;
    SolveOptions options;
    options.trace_sink = &attribution;
    auto result = SolveOnDevice(algorithms[i], lower, problem.b,
                                sim::TinyTestDevice(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    totals[i] = attribution.Totals();
  }

  // §5.3's argument, measured: on an interleaved level structure the
  // two-phase kernel burns materially more cycles busy-waiting (its phase-1
  // spins and failed phase-2 passes) than Writing-First, whose re-polls ride
  // the productive drain loop.
  EXPECT_GT(totals[0].BusyWait(), 3 * totals[1].BusyWait());
  EXPECT_GT(totals[0].spin_iterations, totals[1].spin_iterations);
  // Both ran to completion and did useful work.
  EXPECT_GT(totals[0].useful_issue, 0u);
  EXPECT_GT(totals[1].useful_issue, 0u);
}

TEST(TraceAttribution, BucketsPartitionWarpLifetime) {
  const Csr lower = RandomMatrix(800);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 3);

  trace::StallAttribution attribution;
  SolveOptions options;
  options.trace_sink = &attribution;
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                              problem.b, sim::TinyTestDevice(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(attribution.records().empty());
  for (const trace::WarpRecord& record : attribution.records()) {
    EXPECT_EQ(record.buckets.Total(),
              record.finish_cycle - record.start_cycle)
        << "buckets must partition the warp's resident lifetime exactly";
  }
  const std::string csv = attribution.ToCsv();
  EXPECT_NE(csv.find("spin_issue"), std::string::npos);
  EXPECT_NE(csv.find("spin_stall"), std::string::npos);
  EXPECT_NE(attribution.SummaryTable().find("busy-wait"), std::string::npos);
}

TEST(TraceTimeline, EveryRowPublishesExactlyOnce) {
  const Csr lower = RandomMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 21);

  trace::SolveTimeline timeline;  // CSR kernels: get_value flags, slot 6, i32
  SolveOptions options;
  options.trace_sink = &timeline;
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                              problem.b, sim::TinyTestDevice(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(timeline.unresolved(), 0u);
  ASSERT_EQ(timeline.records().size(),
            static_cast<std::size_t>(lower.rows()));
  std::set<std::int64_t> rows;
  std::uint64_t last_cycle = 0;
  for (const trace::PublishRecord& record : timeline.records()) {
    EXPECT_TRUE(rows.insert(record.row).second)
        << "row " << record.row << " published twice";
    EXPECT_GE(record.cycle, last_cycle) << "publish order must follow time";
    last_cycle = record.cycle;
  }
  EXPECT_GT(timeline.CycleAtFraction(1.0, lower.rows()),
            timeline.CycleAtFraction(0.5, lower.rows()));
}

TEST(TraceTimeline, LevelSetMultiLaunchKeepsOneGlobalClock) {
  const Csr lower = InterleavedLevelMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 17);

  // Level-set publishes through the f64 x vector (param slot 5).
  trace::SolveTimeline timeline(5, 8);
  SolveOptions options;
  options.trace_sink = &timeline;
  auto result = SolveOnDevice(DeviceAlgorithm::kLevelSet, lower, problem.b,
                              sim::TinyTestDevice(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(timeline.unresolved(), 0u);
  EXPECT_EQ(timeline.records().size(),
            static_cast<std::size_t>(lower.rows()));
  // One launch per level; the LaunchClock must keep cycles monotone across
  // launch boundaries.
  std::uint64_t last_cycle = 0;
  for (const trace::PublishRecord& record : timeline.records()) {
    EXPECT_GE(record.cycle, last_cycle);
    last_cycle = record.cycle;
  }
}

TEST(TraceAnnotations, KernelsDeclareSpinAndPublishSites) {
  const sim::Kernel spin_kernels[] = {
      kernels::BuildCapelliniTwoPhaseKernel(),
      kernels::BuildCapelliniWritingFirstKernel(),
      kernels::BuildSyncFreeWarpCsrKernel(),
      kernels::BuildSyncFreeCscKernel(),
      kernels::BuildCusparseProxyKernel(),
      kernels::BuildCapelliniNaiveKernel(),
      kernels::BuildHybridKernel(),
  };
  for (const sim::Kernel& kernel : spin_kernels) {
    EXPECT_FALSE(kernel.spin_regions.empty()) << kernel.name;
    EXPECT_FALSE(kernel.publish_pcs.empty()) << kernel.name;
    EXPECT_TRUE(kernel.Validate().ok()) << kernel.name;
  }
  // The two-phase kernel has two distinct wait sites (phase 1 spin, phase 2
  // failed-pass backedge); writing-first has exactly one.
  EXPECT_EQ(spin_kernels[0].spin_regions.size(), 2u);
  EXPECT_EQ(spin_kernels[1].spin_regions.size(), 1u);

  // Non-busy-waiting kernels still declare their publishes.
  for (const sim::Kernel& kernel :
       {kernels::BuildSerialRowKernel(), kernels::BuildLevelSetKernel()}) {
    EXPECT_TRUE(kernel.spin_regions.empty()) << kernel.name;
    EXPECT_FALSE(kernel.publish_pcs.empty()) << kernel.name;
  }
}

TEST(TraceAnnotations, ValidateRejectsMalformedMetadata) {
  sim::Kernel kernel = kernels::BuildCapelliniWritingFirstKernel();
  ASSERT_TRUE(kernel.Validate().ok());

  sim::Kernel bad_spin = kernel;
  bad_spin.spin_regions.push_back(
      {0, static_cast<std::int32_t>(kernel.code.size()) + 5});
  EXPECT_FALSE(bad_spin.Validate().ok());

  sim::Kernel bad_publish = kernel;
  bad_publish.publish_pcs.push_back(0);  // PC 0 is S2R, not a store
  EXPECT_FALSE(bad_publish.Validate().ok());
}

// Minimal sink recording watchdog callbacks.
class DeadlockRecorder : public trace::TraceSink {
 public:
  void OnDeadlock(std::uint64_t cycle, const std::string& dump) override {
    ++deadlocks_;
    last_dump_ = dump;
    last_cycle_ = cycle;
  }
  int deadlocks() const { return deadlocks_; }
  const std::string& last_dump() const { return last_dump_; }
  std::uint64_t last_cycle() const { return last_cycle_; }

 private:
  int deadlocks_ = 0;
  std::string last_dump_;
  std::uint64_t last_cycle_ = 0;
};

TEST(TraceDeadlock, WatchdogEmitsContextDump) {
  // The naive kernel deadlocks on intra-warp chains (Challenge 1); the sink
  // must receive the same diagnostic context the status carries.
  const Csr lower = MakeBidiagonal(300);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 5);

  DeadlockRecorder recorder;
  SolveOptions options;
  options.trace_sink = &recorder;
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniNaive, lower,
                              problem.b, sim::TinyTestDevice(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlock);
  EXPECT_EQ(recorder.deadlocks(), 1);
  EXPECT_NE(recorder.last_dump().find("no forward progress"),
            std::string::npos);
  EXPECT_GT(recorder.last_cycle(), 0u);
}

TEST(TraceSessionTest, BundlesAllThreeSinks) {
  const Csr lower = RandomMatrix(400);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 31);

  trace::TraceSession session;
  SolveOptions options;
  options.trace_sink = session.sink();
  auto result = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                              problem.b, sim::TinyTestDevice(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(session.attribution().records().empty());
  EXPECT_EQ(session.timeline().records().size(),
            static_cast<std::size_t>(lower.rows()));
  EXPECT_GT(session.chrome().event_count(), 0u);
  EXPECT_FALSE(session.attribution().SummaryTable().empty());
}

}  // namespace
}  // namespace capellini
