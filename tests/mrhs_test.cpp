// Tests for the multiple-right-hand-side (SpTRSM) extension.
#include <gtest/gtest.h>

#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "host/serial.h"
#include "kernels/common.h"
#include "kernels/launch.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "support/rng.h"

namespace capellini::kernels {
namespace {

/// Column-major B with known per-column solutions (from the serial solver).
struct MrhsProblem {
  std::vector<Val> b;       // n x k
  std::vector<Val> x_true;  // n x k
};

MrhsProblem MakeMrhsProblem(const Csr& lower, int k, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(lower.rows());
  MrhsProblem problem;
  problem.b.resize(n * static_cast<std::size_t>(k));
  problem.x_true.resize(n * static_cast<std::size_t>(k));
  Rng rng(seed);
  for (int r = 0; r < k; ++r) {
    std::span<Val> x_col(problem.x_true.data() + static_cast<std::size_t>(r) * n, n);
    std::span<Val> b_col(problem.b.data() + static_cast<std::size_t>(r) * n, n);
    for (auto& v : x_col) v = rng.NextDouble(0.5, 1.5);
    lower.SpMv(x_col, b_col);
  }
  return problem;
}

class MrhsCorrectness
    : public ::testing::TestWithParam<std::tuple<MrhsAlgorithm, int>> {};

TEST_P(MrhsCorrectness, MatchesPerColumnSerial) {
  const auto& [algorithm, k] = GetParam();
  const Csr lower = MakeLevelStructured({.num_levels = 7,
                                         .components_per_level = 120,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.3,
                                         .interleave = false,
                                         .seed = 91});
  const MrhsProblem problem = MakeMrhsProblem(lower, k, 92);

  auto result = SolveMrhsOnDevice(algorithm, lower, problem.b, k,
                                  sim::TinyTestDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10)
      << MrhsAlgorithmName(algorithm) << " k=" << k;

  // Cross-check one column against the host serial solver.
  const auto n = static_cast<std::size_t>(lower.rows());
  std::vector<Val> host_x(n);
  ASSERT_TRUE(host::SolveSerial(
                  lower,
                  std::span<const Val>(problem.b.data() + (k - 1) * n, n),
                  host_x)
                  .ok());
  EXPECT_LE(MaxRelativeError(
                std::span<const Val>(result->x.data() + (k - 1) * n, n),
                host_x),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AlgoTimesK, MrhsCorrectness,
    ::testing::Combine(::testing::Values(MrhsAlgorithm::kCapelliniMrhs,
                                         MrhsAlgorithm::kSyncFreeMrhs),
                       ::testing::Values(1, 2, 3, 4, 6)),
    [](const ::testing::TestParamInfo<MrhsCorrectness::ParamType>& info) {
      std::string name = MrhsAlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(MrhsTest, KEqualsOneMatchesSingleRhsSolver) {
  const Csr lower = MakeRandomLower({.rows = 900,
                                     .avg_strict_nnz_per_row = 2.5,
                                     .window = 0,
                                     .empty_row_fraction = 0.2,
                                     .seed = 93});
  const ReferenceProblem single = MakeReferenceProblem(lower, 94);
  auto mrhs = SolveMrhsOnDevice(MrhsAlgorithm::kCapelliniMrhs, lower, single.b,
                                1, sim::TinyTestDevice());
  auto plain = SolveOnDevice(DeviceAlgorithm::kCapelliniWritingFirst, lower,
                             single.b, sim::TinyTestDevice());
  ASSERT_TRUE(mrhs.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_LE(MaxRelativeError(mrhs->x, plain->x), 1e-14);
}

TEST(MrhsTest, AmortizesStructureTraversal) {
  // k=4 in one pass must beat 4 separate solves in simulated time: the
  // structure (col indices, flags, row pointers) is only walked once.
  const Csr lower = MakeLevelStructured({.num_levels = 6,
                                         .components_per_level = 2000,
                                         .avg_nnz_per_row = 2.5,
                                         .size_jitter = 0.2,
                                         .interleave = false,
                                         .seed = 95});
  const int k = 4;
  const MrhsProblem problem = MakeMrhsProblem(lower, k, 96);
  const auto device = sim::PascalGtx1080();

  auto fused = SolveMrhsOnDevice(MrhsAlgorithm::kCapelliniMrhs, lower,
                                 problem.b, k, device);
  ASSERT_TRUE(fused.ok());

  const auto n = static_cast<std::size_t>(lower.rows());
  double repeated_ms = 0.0;
  for (int r = 0; r < k; ++r) {
    auto single = SolveOnDevice(
        DeviceAlgorithm::kCapelliniWritingFirst, lower,
        std::span<const Val>(problem.b.data() + static_cast<std::size_t>(r) * n,
                             n),
        device);
    ASSERT_TRUE(single.ok());
    repeated_ms += single->exec_ms;
  }
  EXPECT_LT(fused->exec_ms, repeated_ms);
}

TEST(MrhsTest, HostSerialMrhsMatchesColumnwiseSolves) {
  const Csr lower = MakeRandomLower({.rows = 1200,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.15,
                                     .seed = 98});
  for (const int k : {1, 3, 8, 10}) {  // 10 exercises the fallback path
    const MrhsProblem problem = MakeMrhsProblem(lower, k, 99 + k);
    std::vector<Val> x(problem.b.size());
    ASSERT_TRUE(host::SolveSerialMrhs(lower, problem.b, x, k).ok()) << k;
    EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-10) << k;
  }
  std::vector<Val> bad(3);
  std::vector<Val> out(3);
  EXPECT_FALSE(host::SolveSerialMrhs(lower, bad, out, 2).ok());
}

TEST(MrhsTest, RejectsBadArguments) {
  const Csr lower = MakeRandomLower({.rows = 64,
                                     .avg_strict_nnz_per_row = 2.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.0,
                                     .seed = 97});
  std::vector<Val> b(64 * 2, 1.0);
  EXPECT_FALSE(SolveMrhsOnDevice(MrhsAlgorithm::kCapelliniMrhs, lower, b, 7,
                                 sim::TinyTestDevice())
                   .ok());  // k out of range
  EXPECT_FALSE(SolveMrhsOnDevice(MrhsAlgorithm::kCapelliniMrhs, lower, b, 3,
                                 sim::TinyTestDevice())
                   .ok());  // size mismatch
}

TEST(MrhsTest, KernelsValidateForAllK) {
  for (int k = 1; k <= 6; ++k) {
    EXPECT_TRUE(BuildCapelliniWritingFirstMrhsKernel(k).Validate().ok()) << k;
    EXPECT_TRUE(BuildSyncFreeWarpMrhsKernel(k).Validate().ok()) << k;
  }
}

}  // namespace
}  // namespace capellini::kernels
