// Dispatch-equivalence suite for the threaded interpreter core.
//
// The threaded-dispatch / batch-vectorized core (sim/machine.cpp) is an
// observational-equivalence refactor: it must produce bit-identical simulated
// cycles, counters, solutions, and trace/fault event streams to the legacy
// scalar core. The scalar loop is demoted to a test-only oracle — no public
// config selects it; this suite (and bench_interp's identity gate) reaches it
// through sim::Machine::set_scalar_core_for_test. The gate covers every
// Algorithm, lower AND upper factors, with a TraceSink attached and with a
// seeded FaultInjector attached. If the two cores ever disagree on a single
// cycle or a single bit of x, the oracle must stay.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/solver.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/disasm.h"
#include "sim/fault.h"
#include "sim/isa.h"
#include "sim/kernel.h"
#include "sim/machine.h"
#include "trace/sink.h"

namespace capellini {
namespace {

/// FNV-1a over the solution bytes: bit-identity, not tolerance.
std::uint64_t FnvChecksum(const std::vector<Val>& x) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Val v : x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::vector<Val> MakeB(Idx rows) {
  std::vector<Val> b(static_cast<std::size_t>(rows));
  for (Idx i = 0; i < rows; ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 + 0.25 * static_cast<double>(i % 17) -
        0.125 * static_cast<double>(i % 5);
  }
  return b;
}

/// Two shapes with different issue behaviour: a chained band (intra-warp
/// dependencies, spin-heavy) and an interleaved level structure (divergent,
/// stresses Two-Phase).
Csr TestMatrix(const std::string& name) {
  if (name == "banded_chain") {
    return MakeBanded({.rows = 300, .bandwidth = 24, .fill = 0.6,
                       .force_chain = true, .seed = 11});
  }
  if (name == "interleaved") {
    return MakeLevelStructured({.num_levels = 5, .components_per_level = 40,
                                .avg_nnz_per_row = 2.5, .size_jitter = 0.3,
                                .interleave = true, .seed = 12});
  }
  return MakeRandomLower({.rows = 600, .avg_strict_nnz_per_row = 3.0,
                          .window = 0, .empty_row_fraction = 0.1,
                          .seed = 13});
}

SolverOptions MakeOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.host_threads = 2;  // deterministic host paths regardless of machine
  return options;
}

/// Flips the test-only core selector for one Solve and always restores the
/// production (threaded) core, so a failing EXPECT cannot leak the oracle
/// into later tests.
class ScopedScalarCore {
 public:
  explicit ScopedScalarCore(bool scalar) {
    sim::Machine::set_scalar_core_for_test(scalar);
  }
  ~ScopedScalarCore() { sim::Machine::set_scalar_core_for_test(false); }
};

struct RunRecord {
  Status status = Status::Ok();
  std::uint64_t x_checksum = 0;
  sim::LaunchStats stats;
};

RunRecord RunLower(Algorithm algorithm, const Csr& lower,
                   const std::vector<Val>& b, bool scalar,
                   trace::TraceSink* sink = nullptr,
                   sim::FaultInjector* injector = nullptr) {
  SolverOptions options = MakeOptions();
  options.kernel_options.trace_sink = sink;
  options.kernel_options.fault_injector = injector;
  Solver solver(lower, options);
  ScopedScalarCore core(scalar);
  auto result = solver.Solve(algorithm, b);
  RunRecord record;
  if (!result.ok()) {
    record.status = result.status();
    return record;
  }
  record.x_checksum = FnvChecksum(result->x);
  record.stats = result->device_stats;
  return record;
}

RunRecord RunUpper(Algorithm algorithm, const Csr& upper,
                   const std::vector<Val>& b, bool scalar) {
  ScopedScalarCore core(scalar);
  auto result = SolveUpperSystem(upper, b, algorithm, MakeOptions());
  RunRecord record;
  if (!result.ok()) {
    record.status = result.status();
    return record;
  }
  record.x_checksum = FnvChecksum(result->x);
  record.stats = result->device_stats;
  return record;
}

/// EXPECT bit-identical counters — every field, not just cycles, so a
/// refactor that, say, batches instruction accounting differently is caught
/// even when the schedule happens to match.
void ExpectStatsEqual(const sim::LaunchStats& a, const sim::LaunchStats& b,
                      const std::string& context) {
  EXPECT_EQ(a.cycles, b.cycles) << context;
  EXPECT_EQ(a.instructions, b.instructions) << context;
  EXPECT_EQ(a.lane_instructions, b.lane_instructions) << context;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << context;
  EXPECT_EQ(a.dram_transactions, b.dram_transactions) << context;
  EXPECT_EQ(a.issue_slots, b.issue_slots) << context;
  EXPECT_EQ(a.issue_used, b.issue_used) << context;
  EXPECT_EQ(a.stall_slots, b.stall_slots) << context;
  EXPECT_EQ(a.launches, b.launches) << context;
}

void ExpectRunsEqual(const RunRecord& scalar, const RunRecord& threaded,
                     const std::string& context) {
  ASSERT_EQ(scalar.status.code(), threaded.status.code()) << context;
  EXPECT_EQ(scalar.x_checksum, threaded.x_checksum) << context;
  ExpectStatsEqual(scalar.stats, threaded.stats, context);
}

const std::vector<Algorithm>& AllSolvingAlgorithms() {
  // Everything except the deadlocking strawman, which gets its own test.
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kSerialCpu,   Algorithm::kLevelSetCpu,
      Algorithm::kSyncFreeCpu, Algorithm::kLevelSet,
      Algorithm::kSyncFree,    Algorithm::kSyncFreeCsr,
      Algorithm::kCusparse,    Algorithm::kCapelliniTwoPhase,
      Algorithm::kCapellini,   Algorithm::kHybrid,
  };
  return algorithms;
}

TEST(InterpEquivalence, EveryAlgorithmOnLowerFactors) {
  for (const std::string& name : {std::string("banded_chain"),
                                  std::string("interleaved"),
                                  std::string("random")}) {
    const Csr lower = TestMatrix(name);
    const std::vector<Val> b = MakeB(lower.rows());
    for (const Algorithm algorithm : AllSolvingAlgorithms()) {
      const RunRecord scalar = RunLower(algorithm, lower, b, true);
      const RunRecord threaded = RunLower(algorithm, lower, b, false);
      ExpectRunsEqual(scalar, threaded,
                      std::string(AlgorithmName(algorithm)) + " on " + name);
    }
  }
}

TEST(InterpEquivalence, EveryAlgorithmOnUpperFactors) {
  const Csr lower = TestMatrix("banded_chain");
  const Csr upper = ReverseSystem(lower);
  const std::vector<Val> b = MakeB(upper.rows());
  for (const Algorithm algorithm : AllSolvingAlgorithms()) {
    const RunRecord scalar = RunUpper(algorithm, upper, b, true);
    const RunRecord threaded = RunUpper(algorithm, upper, b, false);
    ExpectRunsEqual(scalar, threaded,
                    std::string(AlgorithmName(algorithm)) + " on upper");
  }
}

/// Collects the per-PC issue histogram the suite compares across cores.
class HistogramSink : public trace::TraceSink {
 public:
  void OnIssue(const trace::IssueInfo& info) override {
    key_ = key_ * 1099511628211ull ^
           (static_cast<std::uint64_t>(info.cycle) * 131 +
            static_cast<std::uint64_t>(info.pc));
    ++histogram_[info.pc];
    ++issues_;
  }
  const std::map<std::int32_t, std::uint64_t>& histogram() const {
    return histogram_;
  }
  std::uint64_t issues() const { return issues_; }
  /// Order-sensitive digest of the (cycle, pc) stream — the histogram alone
  /// would accept a reordered schedule.
  std::uint64_t stream_key() const { return key_; }

 private:
  std::map<std::int32_t, std::uint64_t> histogram_;
  std::uint64_t issues_ = 0;
  std::uint64_t key_ = 1469598103934665603ull;
};

TEST(InterpEquivalence, TraceSinkSeesIdenticalStream) {
  // An attached sink disables run fusion in the threaded core, so every
  // instruction gets its per-issue hook at what would have been the
  // fused-run boundary. The contract under test: (1) the threaded core's
  // hooked stream is order-identical to the scalar oracle's, and
  // (2) attaching a sink does not perturb timing relative to the sink-free
  // threaded run — fusion is schedule-neutral.
  const Csr lower = TestMatrix("banded_chain");
  const std::vector<Val> b = MakeB(lower.rows());
  for (const Algorithm algorithm :
       {Algorithm::kCapellini, Algorithm::kLevelSet,
        Algorithm::kCapelliniTwoPhase}) {
    HistogramSink scalar_sink;
    HistogramSink threaded_sink;
    const RunRecord scalar =
        RunLower(algorithm, lower, b, true, &scalar_sink);
    const RunRecord threaded =
        RunLower(algorithm, lower, b, false, &threaded_sink);
    const RunRecord bare = RunLower(algorithm, lower, b, false);
    const std::string context = AlgorithmName(algorithm);
    ExpectRunsEqual(scalar, threaded, context);
    ExpectRunsEqual(scalar, bare, context + " (sink-free)");
    EXPECT_EQ(scalar_sink.issues(), threaded_sink.issues()) << context;
    EXPECT_EQ(scalar_sink.histogram(), threaded_sink.histogram()) << context;
    EXPECT_EQ(scalar_sink.stream_key(), threaded_sink.stream_key()) << context;
    EXPECT_GT(scalar_sink.issues(), 0u) << context;
  }
}

TEST(InterpEquivalence, SeededFaultInjectorIdentical) {
  // The injector's PRNG streams advance once per opportunity (per issued
  // warp, per lane-store, per stall). The threaded core runs WITH an
  // injector attached — so batching must consume exactly the same
  // opportunity stream or the fault schedule diverges. Timing-only and
  // value-corrupting kinds together: bit-identical x proves the same stores
  // were flipped; bit-identical cycles prove the same warps were parked.
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.bitflip_store_rate = 0.01;
  plan.stuck_warp_rate = 0.002;
  plan.mem_delay_rate = 0.01;
  plan.stuck_cycles = 40;
  plan.mem_delay_cycles = 25;

  const Csr lower = TestMatrix("banded_chain");
  const std::vector<Val> b = MakeB(lower.rows());
  for (const Algorithm algorithm :
       {Algorithm::kCapellini, Algorithm::kSyncFreeCsr}) {
    sim::FaultInjector scalar_injector(plan);
    sim::FaultInjector threaded_injector(plan);
    const RunRecord scalar =
        RunLower(algorithm, lower, b, true, nullptr, &scalar_injector);
    const RunRecord threaded =
        RunLower(algorithm, lower, b, false, nullptr, &threaded_injector);
    const std::string context =
        std::string(AlgorithmName(algorithm)) + " with faults";
    ExpectRunsEqual(scalar, threaded, context);
    const sim::FaultCounts sc = scalar_injector.counts();
    const sim::FaultCounts tc = threaded_injector.counts();
    for (int kind = 0; kind < sim::kNumFaultKinds; ++kind) {
      EXPECT_EQ(sc.injected[static_cast<std::size_t>(kind)],
                tc.injected[static_cast<std::size_t>(kind)])
          << context << " kind " << kind;
    }
    EXPECT_GT(sc.total(), 0u) << context << ": plan rates too low to bite";
  }
}

TEST(InterpEquivalence, NaiveDeadlockIdenticalDump) {
  // The watchdog dump includes the trip cycle and a PC histogram built from
  // the ARCHITECTURAL pc (pc - skip for a warp mid-drain): identical message
  // text is a strong gate on both.
  const Csr chain = MakeBidiagonal(96);
  const std::vector<Val> b = MakeB(chain.rows());
  SolverOptions options = MakeOptions();
  options.device.no_progress_cycles = 30'000;

  Solver scalar_solver(chain, options);
  Solver threaded_solver(chain, options);
  auto scalar = [&] {
    ScopedScalarCore core(true);
    return scalar_solver.Solve(Algorithm::kCapelliniNaive, b);
  }();
  auto threaded = threaded_solver.Solve(Algorithm::kCapelliniNaive, b);
  ASSERT_FALSE(scalar.ok());
  ASSERT_FALSE(threaded.ok());
  EXPECT_EQ(scalar.status().code(), StatusCode::kDeadlock);
  EXPECT_EQ(scalar.status().code(), threaded.status().code());
  EXPECT_EQ(scalar.status().message(), threaded.status().message());
}

// --- Predecode plumbing units -------------------------------------------

TEST(StraightLineRuns, StopsAtMemoryAndControl) {
  using sim::Instr;
  using sim::Op;
  std::vector<Instr> code;
  code.push_back(Instr{Op::kMovI, 0, 0, 0, 1, 0, 0.0});   // 0: run of 2
  code.push_back(Instr{Op::kAddI, 1, 0, 0, 2, 0, 0.0});   // 1: run of 1
  code.push_back(Instr{Op::kLd8F, 0, 0, 0, 0, 0, 0.0});   // 2: memory, run 0
  code.push_back(Instr{Op::kFAdd, 0, 0, 0, 0, 0, 0.0});   // 3: run of 2
  code.push_back(Instr{Op::kFence, 0, 0, 0, 0, 0, 0.0});  // 4: batchable
  code.push_back(Instr{Op::kBrnz, 0, 0, 0, 0, 5, 0.0});   // 5: control, run 0
  code.push_back(Instr{Op::kExit, 0, 0, 0, 0, 0, 0.0});   // 6: run 0
  const std::vector<std::uint16_t> runs = sim::StraightLineRuns(code);
  ASSERT_EQ(runs.size(), code.size());
  EXPECT_EQ(runs[0], 2);
  EXPECT_EQ(runs[1], 1);
  EXPECT_EQ(runs[2], 0);
  EXPECT_EQ(runs[3], 2);
  EXPECT_EQ(runs[4], 1);
  EXPECT_EQ(runs[5], 0);
  EXPECT_EQ(runs[6], 0);
}

TEST(KernelFingerprint, TracksContentNotName) {
  sim::KernelBuilder builder("fingerprint_a", 1);
  const int r = builder.R("r");
  builder.LdParam(r, 0);
  builder.AddI(r, r, 5);
  builder.Exit();
  sim::Kernel a = builder.Build();

  sim::Kernel renamed = a;
  renamed.name = "fingerprint_b";
  EXPECT_EQ(a.Fingerprint(), renamed.Fingerprint())
      << "the decode cache keys on content; a rename must not invalidate";

  sim::Kernel edited = a;
  edited.code[1].imm = 6;
  EXPECT_NE(a.Fingerprint(), edited.Fingerprint())
      << "any instruction edit must invalidate the decoded trace";
}

TEST(FormatDecodedKernel, AnnotatesFusedRuns) {
  sim::KernelBuilder builder("decoded_listing", 1);
  const int r = builder.R("r");
  builder.LdParam(r, 0);
  builder.AddI(r, r, 1);
  builder.MulI(r, r, 3);
  builder.Exit();
  const sim::Kernel kernel = builder.Build();
  const std::string listing = sim::FormatDecodedKernel(kernel);
  EXPECT_NE(listing.find("fused run"), std::string::npos) << listing;
}

}  // namespace
}  // namespace capellini
