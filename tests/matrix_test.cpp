#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "matrix/convert.h"
#include "matrix/coo.h"
#include "matrix/csc.h"
#include "matrix/csr.h"
#include "matrix/mm_io.h"
#include "matrix/triangular.h"

namespace capellini {
namespace {

/// The paper's Figure 1 example shape: 8x8 unit-lower matrix with four
/// level-sets (rows 0,1,7 at level 0; 2,3,4 at level 1; 5 at level 2;
/// 6 at level 3).
Csr Figure1Matrix() {
  Coo coo(8, 8);
  for (Idx i = 0; i < 8; ++i) coo.Add(i, i, 1.0);
  coo.Add(2, 1, 0.5);
  coo.Add(3, 1, -0.25);
  coo.Add(4, 0, 0.125);
  coo.Add(4, 1, 0.25);
  coo.Add(5, 2, -0.5);
  coo.Add(6, 5, 0.375);
  return CooToCsr(std::move(coo));
}

TEST(CooTest, NormalizeSortsAndMergesDuplicates) {
  Coo coo(3, 3);
  coo.Add(2, 0, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(2, 0, 3.0);
  coo.Add(1, 1, 4.0);
  coo.Normalize();
  ASSERT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0}));
  EXPECT_EQ(coo.entries()[1], (Triplet{1, 1, 4.0}));
  EXPECT_EQ(coo.entries()[2], (Triplet{2, 0, 4.0}));  // merged 1+3
}

TEST(CooTest, ValidateCatchesOutOfBounds) {
  Coo coo(2, 2);
  coo.Add(2, 0, 1.0);
  EXPECT_FALSE(coo.Validate().ok());
  Coo good(2, 2);
  good.Add(1, 1, 1.0);
  EXPECT_TRUE(good.Validate().ok());
}

TEST(CsrTest, ConstructionAndAccessors) {
  const Csr csr = Figure1Matrix();
  EXPECT_EQ(csr.rows(), 8);
  EXPECT_EQ(csr.cols(), 8);
  EXPECT_EQ(csr.nnz(), 14);
  EXPECT_TRUE(csr.Validate().ok());
  EXPECT_EQ(csr.RowLen(4), 3);
  EXPECT_EQ(csr.RowCols(4)[0], 0);
  EXPECT_EQ(csr.RowCols(4)[2], 4);  // diagonal last
}

TEST(CsrTest, IsLowerTriangularWithDiagonal) {
  EXPECT_TRUE(Figure1Matrix().IsLowerTriangularWithDiagonal());

  // Missing diagonal in row 1.
  Coo coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 0, 1.0);
  EXPECT_FALSE(CooToCsr(std::move(coo)).IsLowerTriangularWithDiagonal());

  // Upper entry.
  Coo coo2(2, 2);
  coo2.Add(0, 0, 1.0);
  coo2.Add(0, 1, 1.0);
  coo2.Add(1, 1, 1.0);
  EXPECT_FALSE(CooToCsr(std::move(coo2)).IsLowerTriangularWithDiagonal());

  // Non-square.
  Coo coo3(2, 3);
  coo3.Add(0, 0, 1.0);
  coo3.Add(1, 1, 1.0);
  EXPECT_FALSE(CooToCsr(std::move(coo3)).IsLowerTriangularWithDiagonal());
}

TEST(CsrTest, SpMvMatchesHandComputation) {
  const Csr csr = Figure1Matrix();
  std::vector<Val> x(8, 1.0);
  std::vector<Val> y(8, 0.0);
  csr.SpMv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.5);       // 0.5 + 1
  EXPECT_DOUBLE_EQ(y[4], 1.375);     // 0.125 + 0.25 + 1
  EXPECT_DOUBLE_EQ(y[6], 1.375);     // 0.375 + 1
}

TEST(CsrTest, ValidateRejectsUnsortedColumns) {
  std::vector<Idx> row_ptr = {0, 2};
  std::vector<Idx> col_idx = {1, 0};
  std::vector<Val> val = {1.0, 2.0};
  const Csr csr(1, 2, row_ptr, col_idx, val);
  EXPECT_FALSE(csr.Validate().ok());
}

TEST(ConvertTest, CsrCooRoundTrip) {
  const Csr csr = Figure1Matrix();
  const Csr back = CooToCsr(CsrToCoo(csr));
  EXPECT_EQ(csr, back);
}

TEST(ConvertTest, CsrCscRoundTrip) {
  const Csr csr = Figure1Matrix();
  const Csc csc = CsrToCsc(csr);
  EXPECT_TRUE(csc.Validate().ok());
  EXPECT_EQ(csc.nnz(), csr.nnz());
  const Csr back = CscToCsr(csc);
  EXPECT_EQ(csr, back);
}

TEST(ConvertTest, CscDiagonalFirstForLowerTriangular) {
  const Csc csc = CsrToCsc(Figure1Matrix());
  for (Idx c = 0; c < csc.cols(); ++c) {
    ASSERT_GT(csc.ColLen(c), 0);
    EXPECT_EQ(csc.row_idx()[static_cast<std::size_t>(csc.ColBegin(c))], c);
  }
}

TEST(ConvertTest, TransposeTwiceIsIdentity) {
  const Csr csr = Figure1Matrix();
  const Csr twice = TransposeCsr(TransposeCsr(csr));
  EXPECT_EQ(csr, twice);
}

TEST(ConvertTest, TransposeMovesEntries) {
  const Csr csr = Figure1Matrix();
  const Csr t = TransposeCsr(csr);
  // L(4,0) becomes T(0,4).
  bool found = false;
  for (std::size_t j = 0; j < t.RowCols(0).size(); ++j) {
    if (t.RowCols(0)[j] == 4) {
      EXPECT_DOUBLE_EQ(t.RowVals(0)[j], 0.125);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TriangularTest, ExtractKeepsLowerAndForcesDiagonal) {
  // A general matrix with upper entries and missing diagonal.
  Coo coo(4, 4);
  coo.Add(0, 2, 9.0);   // upper: dropped
  coo.Add(1, 0, 3.0);   // lower: kept
  coo.Add(2, 3, 5.0);   // upper: dropped
  coo.Add(3, 1, -2.0);  // lower: kept
  const Csr general = CooToCsr(std::move(coo));

  LowerTriangularOptions options;
  options.rescale_off_diagonal = false;
  const Csr lower = ExtractLowerTriangular(general, options);
  EXPECT_TRUE(lower.IsLowerTriangularWithDiagonal());
  EXPECT_EQ(lower.nnz(), 4 + 2);  // 4 diagonals + 2 kept entries
  EXPECT_DOUBLE_EQ(lower.RowVals(1)[0], 3.0);   // kept original value
  EXPECT_DOUBLE_EQ(lower.RowVals(1)[1], 1.0);   // unit diagonal
}

TEST(TriangularTest, RescaledValuesAreBounded) {
  Coo coo(64, 64);
  for (Idx i = 0; i < 64; ++i) {
    for (Idx j = 0; j < i; ++j) coo.Add(i, j, 100.0);
  }
  const Csr general = CooToCsr(std::move(coo));
  const Csr lower = ExtractLowerTriangular(general, {});
  EXPECT_TRUE(lower.IsLowerTriangularWithDiagonal());
  for (Idx r = 0; r < lower.rows(); ++r) {
    const auto vals = lower.RowVals(r);
    double offdiag_sum = 0.0;
    for (std::size_t j = 0; j + 1 < vals.size(); ++j) {
      offdiag_sum += std::abs(vals[j]);
    }
    // Row sums stay below the diagonal: solves are well conditioned.
    EXPECT_LT(offdiag_sum, 1.0) << "row " << r;
  }
}

TEST(TriangularTest, ReferenceProblemConsistent) {
  const Csr lower = Figure1Matrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 42);
  ASSERT_EQ(problem.x_true.size(), 8u);
  std::vector<Val> check(8);
  lower.SpMv(problem.x_true, check);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(check[i], problem.b[i]);
  }
}

TEST(TriangularTest, MaxRelativeError) {
  const std::vector<Val> ref = {1.0, 2.0, 100.0};
  const std::vector<Val> exact = ref;
  EXPECT_DOUBLE_EQ(MaxRelativeError(exact, ref), 0.0);
  const std::vector<Val> off = {1.0, 2.0, 101.0};
  EXPECT_NEAR(MaxRelativeError(off, ref), 0.01, 1e-12);
}

TEST(MmIoTest, RoundTrip) {
  const Csr csr = Figure1Matrix();
  std::ostringstream out;
  ASSERT_TRUE(WriteMatrixMarket(CsrToCoo(csr), out).ok());

  std::istringstream in(out.str());
  auto coo = ReadMatrixMarket(in);
  ASSERT_TRUE(coo.ok()) << coo.status().ToString();
  EXPECT_EQ(CooToCsr(std::move(*coo)), csr);
}

TEST(MmIoTest, ReadsPatternAndSymmetric) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n";
  std::istringstream in(text);
  auto coo = ReadMatrixMarket(in);
  ASSERT_TRUE(coo.ok()) << coo.status().ToString();
  // (2,1) expands to (1,0) and (0,1); (3,3) stays single.
  EXPECT_EQ(coo->nnz(), 3);
  EXPECT_EQ(coo->rows(), 3);
}

TEST(MmIoTest, FileRoundTrip) {
  const Csr csr = Figure1Matrix();
  const std::string path = ::testing::TempDir() + "/capellini_roundtrip.mtx";
  ASSERT_TRUE(WriteMatrixMarketFile(CsrToCoo(csr), path).ok());
  auto coo = ReadMatrixMarketFile(path);
  ASSERT_TRUE(coo.ok()) << coo.status().ToString();
  EXPECT_EQ(CooToCsr(std::move(*coo)), csr);
  std::remove(path.c_str());
}

TEST(MmIoTest, MissingFileReportsIoError) {
  auto coo = ReadMatrixMarketFile("/nonexistent/path/matrix.mtx");
  ASSERT_FALSE(coo.ok());
  EXPECT_EQ(coo.status().code(), StatusCode::kIoError);
}

TEST(MmIoTest, PreservesValuesExactly) {
  Coo coo(2, 2);
  coo.Add(0, 0, 1.0 / 3.0);
  coo.Add(1, 1, -2.718281828459045);
  std::ostringstream out;
  ASSERT_TRUE(WriteMatrixMarket(coo, out).ok());
  std::istringstream in(out.str());
  auto back = ReadMatrixMarket(in);
  ASSERT_TRUE(back.ok());
  back->Normalize();
  EXPECT_DOUBLE_EQ(back->entries()[0].val, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(back->entries()[1].val, -2.718281828459045);
}

TEST(MmIoTest, RejectsGarbage) {
  std::istringstream bad("not a matrix market file\n");
  EXPECT_FALSE(ReadMatrixMarket(bad).ok());

  std::istringstream array_fmt("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_FALSE(ReadMatrixMarket(array_fmt).ok());

  std::istringstream oob(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_FALSE(ReadMatrixMarket(oob).ok());
}

}  // namespace
}  // namespace capellini
