// sim/fault.h + core/verify.h: deterministic injection, the zero-perturbation
// contract, and the self-healing solve pipeline built on top.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/banded.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/fault.h"

namespace capellini {
namespace {

/// Tight watchdog so a starved spin-wait converts to kDeadlock quickly.
SolverOptions FaultySolverOptions(sim::FaultInjector* injector) {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.device.no_progress_cycles = 30'000;
  options.kernel_options.fault_injector = injector;
  return options;
}

TEST(FaultInjectorTest, KindNamesCovered) {
  for (const sim::FaultKind kind :
       {sim::FaultKind::kDropPublish, sim::FaultKind::kBitFlipStore,
        sim::FaultKind::kStuckWarp, sim::FaultKind::kMemDelay}) {
    EXPECT_STRNE(sim::FaultKindName(kind), "unknown");
  }
}

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.drop_publish_rate = 0.25;
  sim::FaultInjector a(plan);
  sim::FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.DropPublish(), b.DropPublish()) << "event " << i;
  }
  EXPECT_GT(a.counts().total(), 0u);  // at rate 0.25 some fired
  EXPECT_EQ(a.counts().total(), b.counts().total());
}

TEST(FaultInjectorTest, ReseedRestartsTheEventStream) {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.bitflip_store_rate = 0.3;
  sim::FaultInjector injector(plan);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    double value = 1.0;
    first.push_back(injector.MaybeFlipStoreBit(value));
  }
  injector.Reseed(plan);
  EXPECT_EQ(injector.counts().total(), 0u);
  for (int i = 0; i < 200; ++i) {
    double value = 1.0;
    EXPECT_EQ(injector.MaybeFlipStoreBit(value), first[static_cast<std::size_t>(i)])
        << "event " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  sim::FaultPlan plan;
  plan.drop_publish_rate = 0.5;
  plan.seed = 1;
  sim::FaultInjector a(plan);
  plan.seed = 2;
  sim::FaultInjector b(plan);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.DropPublish() != b.DropPublish();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, MaxFaultsCapsInjectionAcrossKinds) {
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.bitflip_store_rate = 1.0;
  plan.max_faults = 3;
  sim::FaultInjector injector(plan);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    double value = 2.0;
    if (injector.DropPublish()) ++fired;
    if (injector.MaybeFlipStoreBit(value)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.counts().total(), 3u);
}

TEST(FaultInjectorTest, BitFlipTogglesLowExponentBit) {
  sim::FaultPlan plan;
  plan.bitflip_store_rate = 1.0;
  sim::FaultInjector injector(plan);
  double value = 8.0;
  ASSERT_TRUE(injector.MaybeFlipStoreBit(value));
  // Bit 52 is the exponent's low bit: the value halves or doubles.
  EXPECT_TRUE(value == 4.0 || value == 16.0) << value;
  EXPECT_EQ(injector.counts()[sim::FaultKind::kBitFlipStore], 1u);
}

TEST(FaultPlanJsonTest, RoundTrips) {
  sim::FaultPlan plan;
  plan.seed = 1234;
  plan.drop_publish_rate = 0.015625;
  plan.bitflip_store_rate = 0.5;
  plan.stuck_warp_rate = 0.125;
  plan.mem_delay_rate = 0.25;
  plan.stuck_cycles = 777;
  plan.mem_delay_cycles = 111;
  plan.max_faults = 5;
  const std::string path = testing::TempDir() + "fault_plan.json";
  ASSERT_TRUE(sim::WriteFaultPlanJson(plan, path).ok());
  auto read = sim::ReadFaultPlanJson(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->seed, plan.seed);
  EXPECT_EQ(read->drop_publish_rate, plan.drop_publish_rate);
  EXPECT_EQ(read->bitflip_store_rate, plan.bitflip_store_rate);
  EXPECT_EQ(read->stuck_warp_rate, plan.stuck_warp_rate);
  EXPECT_EQ(read->mem_delay_rate, plan.mem_delay_rate);
  EXPECT_EQ(read->stuck_cycles, plan.stuck_cycles);
  EXPECT_EQ(read->mem_delay_cycles, plan.mem_delay_cycles);
  EXPECT_EQ(read->max_faults, plan.max_faults);
  std::remove(path.c_str());
}

TEST(FaultPlanJsonTest, ScopeRoundTrips) {
  sim::FaultPlan plan;
  plan.seed = 9;
  plan.drop_publish_rate = 1.0;
  plan.row_begin = 64;
  plan.row_end = 128;
  plan.warp_begin = 2;
  plan.warp_end = 4;
  const std::string path = testing::TempDir() + "fault_plan_scope.json";
  ASSERT_TRUE(sim::WriteFaultPlanJson(plan, path).ok());
  auto read = sim::ReadFaultPlanJson(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->row_begin, 64);
  EXPECT_EQ(read->row_end, 128);
  EXPECT_EQ(read->warp_begin, 2);
  EXPECT_EQ(read->warp_end, 4);
  EXPECT_TRUE(read->HasRowScope());
  EXPECT_TRUE(read->HasWarpScope());
  // An unscoped plan round-trips to unscoped (the default -1 sentinels).
  sim::FaultPlan unscoped;
  ASSERT_TRUE(sim::WriteFaultPlanJson(unscoped, path).ok());
  auto read_unscoped = sim::ReadFaultPlanJson(path);
  ASSERT_TRUE(read_unscoped.ok());
  EXPECT_FALSE(read_unscoped->HasRowScope());
  EXPECT_FALSE(read_unscoped->HasWarpScope());
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, RowScopeSuppressesOutOfScopeTids) {
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.drop_publish_rate = 1.0;  // every in-scope event fires
  plan.row_begin = 64;
  plan.row_end = 128;
  sim::FaultInjector injector(plan);
  EXPECT_FALSE(injector.DropPublish(0));
  EXPECT_FALSE(injector.DropPublish(63));
  EXPECT_TRUE(injector.DropPublish(64));
  EXPECT_TRUE(injector.DropPublish(127));
  EXPECT_FALSE(injector.DropPublish(128));
  // tid -1 (direct callers with no row identity) is scope-exempt.
  EXPECT_TRUE(injector.DropPublish());
  // The tid offset maps a range launch's LOCAL tids to global rows: local
  // tid 0 on a device whose block starts at row 64 IS row 64.
  injector.Reseed(plan);
  injector.set_tid_offset(64);
  EXPECT_TRUE(injector.DropPublish(0));
  EXPECT_FALSE(injector.DropPublish(64));  // global row 128: out of scope
}

TEST(FaultInjectorTest, ScopeDoesNotPerturbTheEventStream) {
  // Scoped and unscoped plans share seeds, so decisions at in-scope events
  // must be identical — scoping only SUPPRESSES, it never re-randomizes.
  sim::FaultPlan unscoped;
  unscoped.seed = 21;
  unscoped.drop_publish_rate = 0.3;
  sim::FaultPlan scoped = unscoped;
  scoped.row_begin = 100;
  scoped.row_end = 200;
  sim::FaultInjector a(unscoped);
  sim::FaultInjector b(scoped);
  for (int event = 0; event < 400; ++event) {
    const bool in_scope = event >= 100 && event < 200;
    const bool fired_unscoped = a.DropPublish(event);
    const bool fired_scoped = b.DropPublish(event);
    if (in_scope) {
      EXPECT_EQ(fired_scoped, fired_unscoped) << "event " << event;
    } else {
      EXPECT_FALSE(fired_scoped) << "event " << event;
    }
  }
}

TEST(FaultInjectorTest, WarpScopeCoversWholeWarps) {
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.stuck_warp_rate = 1.0;
  plan.warp_begin = 1;
  plan.warp_end = 2;  // only warp 1 (tids 32..63)
  sim::FaultInjector injector(plan);
  EXPECT_EQ(injector.StuckCycles(0), 0u);    // warp 0
  EXPECT_GT(injector.StuckCycles(32), 0u);   // warp 1
  EXPECT_EQ(injector.StuckCycles(64), 0u);   // warp 2
}

TEST(FaultPlanJsonTest, MissingFileAndGarbageAreErrors) {
  EXPECT_FALSE(sim::ReadFaultPlanJson("/nonexistent/plan.json").ok());
  const std::string path = testing::TempDir() + "fault_garbage.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("not a plan\n", file);
  std::fclose(file);
  EXPECT_FALSE(sim::ReadFaultPlanJson(path).ok());
  std::remove(path.c_str());
}

// --- machine-level contracts ------------------------------------------------

TEST(FaultMachineTest, AttachedZeroRateInjectorIsBitIdentical) {
  const Csr matrix = MakeBidiagonal(96);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);

  const Solver clean(Csr(matrix), FaultySolverOptions(nullptr));
  auto baseline = clean.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(baseline.ok());

  sim::FaultInjector injector;  // default plan: every rate zero
  const Solver faulty(Csr(matrix), FaultySolverOptions(&injector));
  auto attached = faulty.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(attached.ok());

  EXPECT_EQ(attached->x, baseline->x);
  EXPECT_EQ(attached->device_stats.cycles, baseline->device_stats.cycles);
  EXPECT_EQ(injector.counts().total(), 0u);
}

TEST(FaultMachineTest, DroppedPublishDeadlocksCapellini) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;  // exactly one dropped flag
  sim::FaultInjector injector(plan);
  const Solver solver(Csr(matrix), FaultySolverOptions(&injector));
  auto result = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlock);
  EXPECT_EQ(injector.counts()[sim::FaultKind::kDropPublish], 1u);
}

TEST(FaultMachineTest, BitFlipIsSilentUntilVerification) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  sim::FaultPlan plan;
  plan.bitflip_store_rate = 1.0;
  plan.max_faults = 1;
  sim::FaultInjector injector(plan);
  const Solver solver(Csr(matrix), FaultySolverOptions(&injector));
  auto result = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());  // the solve itself reports success...
  const Verification verdict = VerifySolution(matrix, problem.b, result->x);
  EXPECT_FALSE(verdict.passed);  // ...only the residual catches the damage
  EXPECT_GT(verdict.residual, 1e-8);
}

TEST(FaultMachineTest, TimingFaultsAreValueNeutral) {
  const Csr matrix = MakeBidiagonal(96);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);

  const Solver clean(Csr(matrix), FaultySolverOptions(nullptr));
  auto baseline = clean.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(baseline.ok());

  sim::FaultPlan plan;
  plan.seed = 3;
  plan.stuck_warp_rate = 0.02;
  plan.mem_delay_rate = 0.02;
  sim::FaultInjector injector(plan);
  const Solver faulty(Csr(matrix), FaultySolverOptions(&injector));
  auto jittered = faulty.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(jittered.ok());
  EXPECT_GT(injector.counts().total(), 0u);
  EXPECT_EQ(jittered->x, baseline->x);  // schedule moved, values did not
  EXPECT_NE(jittered->device_stats.cycles, baseline->device_stats.cycles);
}

// --- verification and the retry ladder ---------------------------------------

TEST(VerifyTest, ExactSolutionPasses) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  const Verification verdict =
      VerifySolution(matrix, problem.b, problem.x_true);
  EXPECT_TRUE(verdict.finite);
  EXPECT_TRUE(verdict.passed);
  EXPECT_LE(verdict.residual, 1e-12);
}

TEST(VerifyTest, NanAndPerturbationFail) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);

  std::vector<Val> poisoned = problem.x_true;
  poisoned[10] = std::nan("");
  const Verification nan_verdict = VerifySolution(matrix, problem.b, poisoned);
  EXPECT_FALSE(nan_verdict.finite);
  EXPECT_FALSE(nan_verdict.passed);
  EXPECT_TRUE(std::isinf(nan_verdict.residual));

  std::vector<Val> perturbed = problem.x_true;
  perturbed[10] *= 2.0;  // what an exponent-bit flip does
  EXPECT_FALSE(VerifySolution(matrix, problem.b, perturbed).passed);
}

TEST(ReliableSolveTest, CleanSolveIsOneVerifiedAttempt) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  const Solver solver(Csr(matrix), FaultySolverOptions(nullptr));
  auto result = solver.SolveReliable(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  ASSERT_EQ(result->attempts.size(), 1u);
  EXPECT_EQ(result->attempts[0].algorithm, Algorithm::kCapellini);
  EXPECT_EQ(result->attempts[0].status, StatusCode::kOk);
  EXPECT_EQ(result->final_algorithm, Algorithm::kCapellini);
  EXPECT_GT(result->verify_ms, 0.0);
}

TEST(ReliableSolveTest, RecoversFromInjectedDeadlock) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;  // rung 0 eats the whole fault budget
  sim::FaultInjector injector(plan);
  const Solver solver(Csr(matrix), FaultySolverOptions(&injector));
  auto result = solver.SolveReliable(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  ASSERT_GE(result->attempts.size(), 2u);
  EXPECT_EQ(result->attempts[0].algorithm, Algorithm::kCapellini);
  EXPECT_EQ(result->attempts[0].status, StatusCode::kDeadlock);
  EXPECT_NE(result->final_algorithm, Algorithm::kCapellini);
  EXPECT_LE(MaxRelativeError(result->solve.x, problem.x_true), 1e-10);
}

TEST(ReliableSolveTest, CustomLadderIsHonored) {
  const Csr matrix = MakeBidiagonal(64);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 5);
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;
  sim::FaultInjector injector(plan);
  const Solver solver(Csr(matrix), FaultySolverOptions(&injector));
  ReliableOptions options;
  options.ladder = {Algorithm::kSerialCpu};
  auto result =
      solver.SolveReliable(Algorithm::kCapellini, problem.b, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  ASSERT_EQ(result->attempts.size(), 2u);
  EXPECT_EQ(result->final_algorithm, Algorithm::kSerialCpu);
}

TEST(ReliableSolveTest, DefaultLadderEndsAtTheImmuneHostRung) {
  const std::vector<Algorithm> ladder = DefaultRetryLadder();
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.back(), Algorithm::kSerialCpu);
  for (const Algorithm rung : ladder) {
    EXPECT_NE(rung, Algorithm::kCapelliniNaive);  // never in a ladder
  }
}

}  // namespace
}  // namespace capellini
