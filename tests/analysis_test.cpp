// Tests for the preprocessing-as-a-kernel stack (PR 9): on-device level-set
// analysis vs the host oracle, analysis persistence (round-trip, corruption,
// staleness), warm registry registrations that run zero host Analyze()
// sweeps, and the end-to-end level-reorder autotuning decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/autotune.h"
#include "core/solver.h"
#include "gen/corpus.h"
#include "gen/level_structured.h"
#include "graph/levels.h"
#include "kernels/analyze.h"
#include "matrix/triangular.h"
#include "serve/persist.h"
#include "serve/registry.h"
#include "sim/config.h"

namespace capellini {
namespace {

Csr TestMatrix(std::uint64_t seed) {
  return MakeLevelStructured({.num_levels = 6,
                              .components_per_level = 40,
                              .avg_nnz_per_row = 3.0,
                              .size_jitter = 0.2,
                              .interleave = false,
                              .seed = seed});
}

SolverOptions TinyOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  return options;
}

/// Fresh per-test cache directory under the gtest temp root.
std::string CacheDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "capellini_persist_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectSameLevels(const LevelSets& got, const LevelSets& want) {
  EXPECT_EQ(got.level_of, want.level_of);
  EXPECT_EQ(got.level_ptr, want.level_ptr);
  EXPECT_EQ(got.order, want.order);
}

// --- AnalyzeOnDevice vs host ComputeLevelSets ------------------------------

TEST(DeviceAnalyzeTest, BitIdenticalToHostAcrossCorpus) {
  for (const NamedMatrix& m : GranularityCorpus({.tier = CorpusTier::kQuick})) {
    auto device = kernels::AnalyzeOnDevice(m.matrix, sim::TinyTestDevice());
    ASSERT_TRUE(device.ok()) << m.name << ": " << device.status().ToString();
    const LevelSets host = ComputeLevelSets(m.matrix);
    SCOPED_TRACE(m.name);
    ExpectSameLevels(device->levels, host);
  }
}

TEST(DeviceAnalyzeTest, ReportsSimulatedCost) {
  auto device = kernels::AnalyzeOnDevice(TestMatrix(11), sim::TinyTestDevice());
  ASSERT_TRUE(device.ok());
  EXPECT_GT(device->stats.cycles, 0u);
  EXPECT_GT(device->exec_ms, 0.0);
  EXPECT_GE(device->host_ms, 0.0);
}

TEST(DeviceAnalyzeTest, RejectsEmptySystem) {
  auto device = kernels::AnalyzeOnDevice(Csr(), sim::TinyTestDevice());
  EXPECT_FALSE(device.ok());
  EXPECT_EQ(device.status().code(), StatusCode::kInvalidArgument);
}

// --- Persistence (serve/persist.h) -----------------------------------------

TEST(PersistTest, RoundTripIsBitIdentical) {
  const Csr matrix = TestMatrix(21);
  const LevelSets levels = ComputeLevelSets(matrix);
  const serve::AnalysisCache cache(CacheDir("roundtrip"));
  ASSERT_TRUE(cache.Store("m21", matrix, levels, 1.25).ok());

  auto loaded = cache.Load("m21", matrix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->level_of, levels.level_of);
  EXPECT_EQ(loaded->cost_seed_ms, 1.25);
  // The full Analysis rebuilt from the persisted level_of is bit-identical
  // to the from-scratch one.
  const Analysis cold = Analyze(matrix, "m21");
  const Analysis warm = AssembleAnalysis(
      matrix, "m21", BuildLevelSetsFromLevelOf(std::move(loaded->level_of)));
  ExpectSameLevels(warm.levels, cold.levels);
  EXPECT_EQ(warm.recommended, cold.recommended);
  EXPECT_EQ(warm.stats.num_levels, cold.stats.num_levels);
}

TEST(PersistTest, MissingFileIsNotFound) {
  const serve::AnalysisCache cache(CacheDir("missing"));
  auto loaded = cache.Load("never_stored", TestMatrix(22));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(PersistTest, CorruptedFileIsDataLoss) {
  const Csr matrix = TestMatrix(23);
  const serve::AnalysisCache cache(CacheDir("corrupt"));
  ASSERT_TRUE(cache.Store("m23", matrix, ComputeLevelSets(matrix), 0.5).ok());

  // Flip one payload byte in place; the trailing FNV checksum must catch it.
  const std::string path = cache.PathFor("m23");
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekp(32);  // inside level_of[]
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(32);
  byte = static_cast<char>(byte ^ 0x5A);
  file.write(&byte, 1);
  file.close();

  auto loaded = cache.Load("m23", matrix);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(PersistTest, TruncatedFileIsDataLoss) {
  const Csr matrix = TestMatrix(24);
  const serve::AnalysisCache cache(CacheDir("truncate"));
  ASSERT_TRUE(cache.Store("m24", matrix, ComputeLevelSets(matrix), 0.5).ok());

  const std::string path = cache.PathFor("m24");
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  auto loaded = cache.Load("m24", matrix);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(PersistTest, StaleFingerprintIsDataLoss) {
  // Same name, structurally different factor: the in-file fingerprint no
  // longer matches and the entry must be treated as stale, not served.
  const Csr old_matrix = TestMatrix(25);
  const Csr new_matrix = TestMatrix(26);
  const serve::AnalysisCache cache(CacheDir("stale"));
  ASSERT_TRUE(
      cache.Store("m", old_matrix, ComputeLevelSets(old_matrix), 0.5).ok());

  auto loaded = cache.Load("m", new_matrix);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  // The original matrix still loads fine — staleness is per-lookup.
  EXPECT_TRUE(cache.Load("m", old_matrix).ok());
}

TEST(PersistTest, FingerprintIgnoresValues) {
  Csr a = TestMatrix(27);
  Csr b = a;
  for (Val& v : b.mutable_val()) v *= 2.0;
  EXPECT_EQ(serve::StructureFingerprint(a), serve::StructureFingerprint(b));
}

// --- Registry integration: cold / warm / on-device -------------------------

TEST(RegistryPersistTest, WarmRegistrationRunsZeroHostAnalyzes) {
  const std::string dir = CacheDir("registry_warm");
  const Csr matrix = TestMatrix(31);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);

  std::vector<Val> cold_x;
  LevelSets cold_levels;
  {
    serve::MatrixRegistry cold({.analysis_cache_dir = dir});
    auto handle = cold.Register(matrix, "m31", TinyOptions());
    ASSERT_TRUE(handle.ok());
    auto entry = cold.Acquire(*handle);
    ASSERT_TRUE(entry.ok());
    cold_levels = (*entry)->solver.Levels();
    auto solve = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
    ASSERT_TRUE(solve.ok());
    cold_x = solve->x;
    const serve::RegistrySnapshot snap = cold.Snapshot();
    EXPECT_EQ(snap.analysis_cache_hits, 0u);
    EXPECT_EQ(snap.analysis_cache_misses, 1u);
  }

  // Simulated restart: a fresh registry over the same cache directory must
  // rehydrate without a single host Analyze() level sweep...
  serve::MatrixRegistry warm({.analysis_cache_dir = dir});
  const std::int64_t analyzes_before = AnalyzeCallCountForTest();
  auto handle = warm.Register(matrix, "m31", TinyOptions());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(AnalyzeCallCountForTest(), analyzes_before);
  const serve::RegistrySnapshot snap = warm.Snapshot();
  EXPECT_EQ(snap.analysis_cache_hits, 1u);
  EXPECT_EQ(snap.analysis_cache_misses, 0u);

  // ...and the rehydrated analysis + solve are byte-identical to cold.
  auto entry = warm.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE((*entry)->solver.analyzed());
  ExpectSameLevels((*entry)->solver.Levels(), cold_levels);
  auto solve = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(solve.ok());
  ASSERT_EQ(solve->x.size(), cold_x.size());
  for (std::size_t i = 0; i < cold_x.size(); ++i) {
    EXPECT_EQ(solve->x[i], cold_x[i]) << "component " << i;
  }
}

TEST(RegistryPersistTest, StaleCacheFallsBackToColdAnalysis) {
  const std::string dir = CacheDir("registry_stale");
  {
    serve::MatrixRegistry registry({.analysis_cache_dir = dir});
    ASSERT_TRUE(registry.Register(TestMatrix(41), "m", TinyOptions()).ok());
  }
  // Same tenant name, regenerated (different-structure) factor: the stale
  // file must NOT be served; a fresh analysis runs and overwrites it.
  const Csr regenerated = TestMatrix(42);
  serve::MatrixRegistry registry({.analysis_cache_dir = dir});
  auto handle = registry.Register(regenerated, "m", TinyOptions());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(registry.Snapshot().analysis_cache_hits, 0u);
  EXPECT_EQ(registry.Snapshot().analysis_cache_misses, 1u);
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  ExpectSameLevels((*entry)->solver.Levels(), ComputeLevelSets(regenerated));

  // The overwrite made the file warm for the regenerated structure.
  serve::MatrixRegistry again({.analysis_cache_dir = dir});
  ASSERT_TRUE(again.Register(regenerated, "m", TinyOptions()).ok());
  EXPECT_EQ(again.Snapshot().analysis_cache_hits, 1u);
}

TEST(RegistryDeviceAnalyzeTest, OnDeviceAnalysisMatchesHostAndIsCounted) {
  serve::MatrixRegistry registry({.analyze_on_device = true});
  const Csr matrix = TestMatrix(51);
  auto handle = registry.Register(matrix, "m51", TinyOptions());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(registry.Snapshot().device_analyses, 1u);
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE((*entry)->solver.analyzed());
  EXPECT_GT((*entry)->analysis_ms, 0.0);  // simulated exec + host assembly
  ExpectSameLevels((*entry)->solver.Levels(), ComputeLevelSets(matrix));
}

// --- End-to-end reorder decision (core/autotune.h) -------------------------

TEST(ReorderTest, ProfileIsEndToEndConsistent) {
  const Csr matrix = TestMatrix(61);
  auto profile = TuneLevelReorder(matrix, sim::TinyTestDevice());
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(profile->direct_solve_ms, 0.0);
  EXPECT_GT(profile->analyze_ms, 0.0);
  EXPECT_GT(profile->reordered_solve_ms, 0.0);
  EXPECT_EQ(profile->num_levels, 6);
  EXPECT_DOUBLE_EQ(profile->reordered_total_ms,
                   profile->analyze_ms + profile->reordered_solve_ms);
  // The verdict is exactly the end-to-end comparison — reordering is never
  // selected on solve time alone.
  EXPECT_EQ(profile->use_reorder,
            profile->reordered_total_ms < profile->direct_solve_ms);
}

TEST(ReorderTest, AmortizationSpreadsAnalysisCost) {
  const Csr matrix = TestMatrix(62);
  auto once = TuneLevelReorder(matrix, sim::TinyTestDevice(),
                               {.amortize_solves = 1});
  auto many = TuneLevelReorder(matrix, sim::TinyTestDevice(),
                               {.amortize_solves = 1000});
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_LT(many->reordered_total_ms, once->reordered_total_ms);
  EXPECT_DOUBLE_EQ(
      many->reordered_total_ms,
      many->analyze_ms / 1000.0 + many->reordered_solve_ms);
}

}  // namespace
}  // namespace capellini
