#include <gtest/gtest.h>

#include "gen/banded.h"
#include "gen/corpus.h"
#include "gen/level_structured.h"
#include "gen/proxies.h"
#include "gen/random_lower.h"
#include "gen/rmat.h"
#include "graph/stats.h"

namespace capellini {
namespace {

TEST(BandedTest, FullBandStructure) {
  const Csr matrix = MakeBanded({.rows = 100, .bandwidth = 4, .fill = 1.0,
                                 .force_chain = true, .seed = 1});
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());
  // Row 50 has 4 in-band entries + diagonal.
  EXPECT_EQ(matrix.RowLen(50), 5);
  EXPECT_EQ(matrix.RowLen(0), 1);
  const MatrixStats stats = ComputeStats(matrix, "band");
  EXPECT_EQ(stats.num_levels, 100);  // forced chain
}

TEST(BandedTest, FillControlsDensity) {
  const Csr dense = MakeBanded({.rows = 2000, .bandwidth = 16, .fill = 1.0,
                                .force_chain = false, .seed = 2});
  const Csr sparse = MakeBanded({.rows = 2000, .bandwidth = 16, .fill = 0.25,
                                 .force_chain = false, .seed = 2});
  EXPECT_GT(dense.nnz(), sparse.nnz() * 2);
}

TEST(BandedTest, Bidiagonal) {
  const Csr matrix = MakeBidiagonal(10);
  EXPECT_EQ(matrix.nnz(), 19);  // 10 diagonal + 9 subdiagonal
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());
}

TEST(BandedTest, DiagonalOnly) {
  const Csr matrix = MakeDiagonal(10);
  EXPECT_EQ(matrix.nnz(), 10);
  for (Idx r = 0; r < 10; ++r) EXPECT_EQ(matrix.RowLen(r), 1);
}

TEST(BandedTest, DenseLower) {
  const Csr matrix = MakeDenseLower(16);
  EXPECT_EQ(matrix.nnz(), 16 * 17 / 2);
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());
}

TEST(RandomLowerTest, HitsTargetDensity) {
  const Csr matrix = MakeRandomLower({.rows = 20000,
                                      .avg_strict_nnz_per_row = 4.0,
                                      .window = 0,
                                      .empty_row_fraction = 0.0,
                                      .seed = 3});
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());
  const double alpha =
      static_cast<double>(matrix.nnz()) / static_cast<double>(matrix.rows());
  // alpha includes the diagonal; target is 4 strict + 1.
  EXPECT_NEAR(alpha, 5.0, 0.5);
}

TEST(RandomLowerTest, WindowBoundsDependencies) {
  const Idx window = 10;
  const Csr matrix = MakeRandomLower({.rows = 1000,
                                      .avg_strict_nnz_per_row = 3.0,
                                      .window = window,
                                      .empty_row_fraction = 0.0,
                                      .seed = 4});
  for (Idx r = 0; r < matrix.rows(); ++r) {
    for (const Idx c : matrix.RowCols(r)) {
      if (c != r) {
        EXPECT_GE(c, r - window);
      }
    }
  }
}

TEST(RandomLowerTest, EmptyRowFractionCreatesLevelZeroRows) {
  const Csr matrix = MakeRandomLower({.rows = 5000,
                                      .avg_strict_nnz_per_row = 3.0,
                                      .window = 0,
                                      .empty_row_fraction = 0.5,
                                      .seed = 5});
  Idx diag_only = 0;
  for (Idx r = 0; r < matrix.rows(); ++r) {
    if (matrix.RowLen(r) == 1) ++diag_only;
  }
  EXPECT_GT(diag_only, 2000);
  EXPECT_LT(diag_only, 3200);
}

TEST(RandomLowerTest, Deterministic) {
  const RandomLowerOptions options{.rows = 500,
                                   .avg_strict_nnz_per_row = 2.0,
                                   .window = 0,
                                   .empty_row_fraction = 0.1,
                                   .seed = 6};
  EXPECT_EQ(MakeRandomLower(options), MakeRandomLower(options));
}

struct LevelStructuredCase {
  Idx levels;
  Idx beta;
  double alpha;
  bool interleave;
};

class LevelStructuredSweep
    : public ::testing::TestWithParam<LevelStructuredCase> {};

TEST_P(LevelStructuredSweep, HitsStructuralTargets) {
  const LevelStructuredCase param = GetParam();
  LevelStructuredOptions options;
  options.num_levels = param.levels;
  options.components_per_level = param.beta;
  options.avg_nnz_per_row = param.alpha;
  options.interleave = param.interleave;
  options.seed = 31;
  const Csr matrix = MakeLevelStructured(options);
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());

  const MatrixStats stats = ComputeStats(matrix, "ls");
  EXPECT_EQ(stats.num_levels, param.levels);
  EXPECT_NEAR(stats.avg_components_per_level, param.beta,
              0.05 * param.beta + 1.0);
  EXPECT_NEAR(stats.avg_nnz_per_row, param.alpha, 0.25 * param.alpha + 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelStructuredSweep,
    ::testing::Values(LevelStructuredCase{2, 1000, 2.0, false},
                      LevelStructuredCase{8, 100, 3.0, false},
                      LevelStructuredCase{32, 20, 5.0, false},
                      LevelStructuredCase{4, 400, 2.5, false},
                      LevelStructuredCase{16, 16, 8.0, false},
                      LevelStructuredCase{4, 64, 2.0, true},
                      LevelStructuredCase{8, 8, 3.0, true}));

TEST(LevelStructuredTest, InterleaveMixesLevelsInIndexOrder) {
  LevelStructuredOptions options;
  options.num_levels = 4;
  options.components_per_level = 64;
  options.avg_nnz_per_row = 2.5;
  options.interleave = true;
  options.seed = 9;
  const Csr matrix = MakeLevelStructured(options);
  const LevelSets levels = ComputeLevelSets(matrix);
  ASSERT_EQ(levels.num_levels(), 4);
  // In the interleaved layout, consecutive rows frequently belong to
  // different levels -> warps get intra-warp dependencies.
  Idx changes = 0;
  for (Idx i = 1; i < matrix.rows(); ++i) {
    if (levels.level_of[static_cast<std::size_t>(i)] !=
        levels.level_of[static_cast<std::size_t>(i - 1)]) {
      ++changes;
    }
  }
  EXPECT_GT(changes, matrix.rows() / 2);
}

TEST(RmatTest, GeneratesPowerLawLowerTriangular) {
  const Csr matrix = MakeRmatLower({.nodes = 1 << 12, .edges_per_node = 4.0,
                                    .a = 0.57, .b = 0.19, .c = 0.19,
                                    .seed = 10});
  EXPECT_TRUE(matrix.IsLowerTriangularWithDiagonal());
  EXPECT_GT(matrix.nnz(), matrix.rows());  // has off-diagonal structure
  // Power-law-ish: some row much longer than the average.
  Idx max_len = 0;
  for (Idx r = 0; r < matrix.rows(); ++r) {
    max_len = std::max(max_len, matrix.RowLen(r));
  }
  const double avg =
      static_cast<double>(matrix.nnz()) / static_cast<double>(matrix.rows());
  EXPECT_GT(static_cast<double>(max_len), 8.0 * avg);
}

TEST(RmatTest, ShallowDag) {
  const Csr matrix = MakeRmatLower({.nodes = 1 << 13, .edges_per_node = 3.0,
                                    .a = 0.57, .b = 0.19, .c = 0.19,
                                    .seed = 11});
  const MatrixStats stats = ComputeStats(matrix, "rmat");
  // Social-graph-like factor: far fewer levels than rows.
  EXPECT_LT(stats.num_levels, matrix.rows() / 50);
}

TEST(ProxyTest, IndicatorsMatchPaperTargets) {
  struct Target {
    ProxyId id;
    double delta;
    double tol;
  };
  const Target targets[] = {
      {ProxyId::kRajat29, 0.78, 0.05},
      {ProxyId::kBayer01, 0.87, 0.05},
      {ProxyId::kCircuit5MDc, 0.92, 0.05},
      {ProxyId::kLp1, 1.18, 0.08},
  };
  for (const Target& target : targets) {
    const NamedMatrix proxy = MakeProxy(target.id);
    EXPECT_NEAR(proxy.stats.parallel_granularity, target.delta, target.tol)
        << proxy.name;
  }
}

TEST(ProxyTest, AllProxiesAreValidSystems) {
  for (const NamedMatrix& proxy : AllProxies()) {
    EXPECT_TRUE(proxy.matrix.IsLowerTriangularWithDiagonal()) << proxy.name;
    EXPECT_TRUE(proxy.matrix.Validate().ok()) << proxy.name;
    EXPECT_GT(proxy.stats.nnz, 0) << proxy.name;
  }
}

TEST(ProxyTest, CantIsLowGranularityNlpkktModerate) {
  EXPECT_LT(MakeProxy(ProxyId::kCant).stats.parallel_granularity, 0.2);
  EXPECT_LT(MakeProxy(ProxyId::kNlpkkt160).stats.parallel_granularity, 0.6);
  EXPECT_GT(MakeProxy(ProxyId::kWikiTalk).stats.parallel_granularity, 0.7);
}

TEST(CorpusTest, BetaForGranularityInvertsEquationOne) {
  int feasible = 0;
  for (const double delta : {0.4, 0.7, 0.9, 1.1}) {
    for (const double alpha : {2.0, 3.0, 5.0}) {
      const Idx beta = BetaForGranularity(delta, alpha, 1'000'000);
      if (beta == 0) continue;  // infeasible wedge (high delta + high alpha)
      ++feasible;
      EXPECT_NEAR(ParallelGranularity(beta, alpha), delta, 0.02)
          << "delta " << delta << " alpha " << alpha;
    }
  }
  EXPECT_GE(feasible, 9);
}

TEST(CorpusTest, InfeasiblePairsReturnZero) {
  // delta 1.15 at alpha 20 would need beta ~ 10^18.
  EXPECT_EQ(BetaForGranularity(1.15, 20.0, 1'000'000), 0);
}

TEST(CorpusTest, QuickCorpusCoversGranularityRange) {
  const auto corpus = GranularityCorpus({.tier = CorpusTier::kQuick,
                                         .seed = 1,
                                         .target_rows = 4000});
  ASSERT_GT(corpus.size(), 15u);
  double min_delta = 1e9, max_delta = -1e9;
  for (const NamedMatrix& named : corpus) {
    EXPECT_TRUE(named.matrix.IsLowerTriangularWithDiagonal()) << named.name;
    min_delta = std::min(min_delta, named.stats.parallel_granularity);
    max_delta = std::max(max_delta, named.stats.parallel_granularity);
  }
  EXPECT_LT(min_delta, 0.5);
  EXPECT_GT(max_delta, 1.0);
}

TEST(CorpusTest, HighGranularityEntriesAreLarge) {
  // The paper's high-granularity matrices are big (nnz > 100k); the corpus
  // must preserve that or the thread-level kernel cannot saturate the
  // simulated devices (see corpus.cpp commentary).
  const auto corpus = HighGranularityCorpus({.tier = CorpusTier::kQuick,
                                             .seed = 3,
                                             .target_rows = 2'000});
  for (const NamedMatrix& named : corpus) {
    if (named.name.rfind("ls_", 0) != 0) continue;  // generated sweep entries
    EXPECT_GE(named.stats.rows, 8 * 2'000) << named.name;
  }
}

TEST(CorpusTest, HighGranularitySliceIsAboveCrossover) {
  const auto corpus = HighGranularityCorpus({.tier = CorpusTier::kQuick,
                                             .seed = 2,
                                             .target_rows = 4000});
  ASSERT_GT(corpus.size(), 5u);
  for (const NamedMatrix& named : corpus) {
    EXPECT_GT(named.stats.parallel_granularity, 0.7) << named.name;
  }
}

}  // namespace
}  // namespace capellini
