// Tests for the streaming-factor delta subsystem (DESIGN.md §4h):
// DeltaBatch validation, IncrementalAnalyzer vs the from-scratch Analyze
// oracle, registry ApplyDelta epoch/byte semantics, in-flight snapshot
// safety through the service, mixed solve/update replay, and the
// exactly-once update accounting next to the PR-4 request invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/solver.h"
#include "gen/banded.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"
#include "serve/registry.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "sim/config.h"
#include "update/delta.h"
#include "update/incremental.h"

namespace capellini {
namespace {

using serve::MatrixRegistry;
using serve::RegistryOptions;
using serve::ServiceOptions;
using serve::SolveService;
using update::DeltaBatch;
using update::DeltaKind;
using update::IncrementalAnalyzer;

std::uint64_t FnvChecksum(const std::vector<Val>& x) {
  std::uint64_t h = serve::kFnvSeed;
  for (const Val v : x) h = serve::HashBytes(h, &v, sizeof(v));
  return h;
}

SolverOptions TinyOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  return options;
}

bool HasEntry(const Csr& m, Idx row, Idx col) {
  const auto cols = m.RowCols(row);
  return std::binary_search(cols.begin(), cols.end(), col);
}

/// First strictly-lower position (row, col) absent from `m`, scanning from
/// `from_row`. Fails the test if none exists (pick sparser inputs).
std::pair<Idx, Idx> FindAbsentStrictLower(const Csr& m, Idx from_row) {
  for (Idx i = std::max<Idx>(from_row, 1); i < m.rows(); ++i) {
    for (Idx j = 0; j < i; ++j) {
      if (!HasEntry(m, i, j)) return {i, j};
    }
  }
  ADD_FAILURE() << "no absent strictly-lower position";
  return {0, 0};
}

/// First strictly-lower nonzero (row, col) present in `m` at or after
/// `from_row`.
std::pair<Idx, Idx> FindPresentStrictLower(const Csr& m, Idx from_row) {
  for (Idx i = std::max<Idx>(from_row, 1); i < m.rows(); ++i) {
    const auto cols = m.RowCols(i);
    if (cols.size() > 1) return {i, cols[0]};
  }
  ADD_FAILURE() << "no present strictly-lower nonzero";
  return {0, 0};
}

/// 4x4 lower factor with a mix of dense and diagonal-only rows:
///   row0: (0,0)=2
///   row1: (1,0)=1 (1,1)=3
///   row2: (2,2)=4
///   row3: (3,1)=5 (3,3)=6
Csr HandMatrix() {
  return Csr(4, 4, {0, 1, 3, 4, 6}, {0, 0, 1, 2, 1, 3}, {2, 1, 3, 4, 5, 6});
}

/// The patched analysis must be indistinguishable from the from-scratch
/// oracle — including the doubles, which both sides compute with the same
/// code over the same level arrays.
void ExpectAnalysisEqual(const Analysis& got, const Analysis& want) {
  EXPECT_EQ(got.levels.level_of, want.levels.level_of);
  EXPECT_EQ(got.levels.level_ptr, want.levels.level_ptr);
  EXPECT_EQ(got.levels.order, want.levels.order);
  EXPECT_EQ(got.stats.name, want.stats.name);
  EXPECT_EQ(got.stats.rows, want.stats.rows);
  EXPECT_EQ(got.stats.nnz, want.stats.nnz);
  EXPECT_EQ(got.stats.avg_nnz_per_row, want.stats.avg_nnz_per_row);
  EXPECT_EQ(got.stats.num_levels, want.stats.num_levels);
  EXPECT_EQ(got.stats.avg_components_per_level,
            want.stats.avg_components_per_level);
  EXPECT_EQ(got.stats.max_level_size, want.stats.max_level_size);
  EXPECT_EQ(got.stats.parallel_granularity, want.stats.parallel_granularity);
  EXPECT_EQ(got.row_lengths.counts, want.row_lengths.counts);
  EXPECT_EQ(got.row_lengths.total, want.row_lengths.total);
  EXPECT_EQ(got.row_lengths.min_value, want.row_lengths.min_value);
  EXPECT_EQ(got.row_lengths.max_value, want.row_lengths.max_value);
  EXPECT_EQ(got.recommended, want.recommended);
}

TEST(DeltaBatchTest, KindSplitAndByteSize) {
  DeltaBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.value_only());

  batch.UpdateValue(3, 1, 7.5);
  EXPECT_TRUE(batch.value_only());
  EXPECT_EQ(batch.structural_count(), 0u);

  batch.Insert(2, 0, 1.0);
  batch.Erase(3, 1);
  EXPECT_FALSE(batch.value_only());
  EXPECT_EQ(batch.structural_count(), 2u);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.ByteSize(), 3 * sizeof(update::Delta));
}

TEST(DeltaBatchTest, ApplyToMatrixMutatesValuesAndPattern) {
  const Csr lower = HandMatrix();

  DeltaBatch batch;
  batch.UpdateValue(1, 0, 9.0);   // off-diagonal value overwrite
  batch.UpdateValue(2, 2, -4.0);  // diagonal overwrite (nonzero is legal)
  batch.Insert(2, 1, 8.0);        // new strictly-lower entry
  batch.Erase(3, 1);              // drop a strictly-lower entry
  auto mutated = update::ApplyToMatrix(lower, batch);
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();

  const Csr expected(4, 4, {0, 1, 3, 5, 6}, {0, 0, 1, 1, 2, 3},
                     {2, 9, 3, 8, -4, 6});
  EXPECT_EQ(*mutated, expected);
  EXPECT_TRUE(mutated->IsLowerTriangularWithDiagonal());
  // The input is untouched (ApplyToMatrix returns a mutated copy).
  EXPECT_EQ(lower, HandMatrix());
}

TEST(DeltaBatchTest, ApplyToMatrixRejectsIllegalDeltas) {
  const Csr lower = HandMatrix();
  const auto expect_invalid = [&](const DeltaBatch& batch, const char* what) {
    auto result = update::ApplyToMatrix(lower, batch);
    ASSERT_FALSE(result.ok()) << what;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << what;
  };

  DeltaBatch out_of_range;
  out_of_range.UpdateValue(4, 0, 1.0);
  expect_invalid(out_of_range, "row out of range");

  DeltaBatch above_diagonal;
  above_diagonal.UpdateValue(1, 2, 1.0);
  expect_invalid(above_diagonal, "above the diagonal");

  DeltaBatch value_absent;
  value_absent.UpdateValue(2, 0, 1.0);
  expect_invalid(value_absent, "value update of an absent position");

  DeltaBatch zero_diagonal;
  zero_diagonal.UpdateValue(2, 2, 0.0);
  expect_invalid(zero_diagonal, "zero diagonal overwrite");

  DeltaBatch insert_present;
  insert_present.Insert(1, 0, 1.0);
  expect_invalid(insert_present, "insert of a present position");

  DeltaBatch insert_diagonal;
  insert_diagonal.Insert(2, 2, 1.0);
  expect_invalid(insert_diagonal, "insert on the diagonal");

  DeltaBatch erase_absent;
  erase_absent.Erase(2, 0);
  expect_invalid(erase_absent, "erase of an absent position");

  DeltaBatch erase_diagonal;
  erase_diagonal.Erase(1, 1);
  expect_invalid(erase_diagonal, "erase of the diagonal");
}

TEST(DeltaBatchTest, LaterDeltasSeeEarlierOnes) {
  const Csr lower = HandMatrix();

  // Insert-then-update of the same position is legal in one batch.
  DeltaBatch insert_then_update;
  insert_then_update.Insert(2, 0, 1.0);
  insert_then_update.UpdateValue(2, 0, 5.0);
  auto ok = update::ApplyToMatrix(lower, insert_then_update);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->RowVals(2)[0], 5.0);

  // Double-insert is not: the second insert sees the first.
  DeltaBatch double_insert;
  double_insert.Insert(2, 0, 1.0);
  double_insert.Insert(2, 0, 2.0);
  auto dup = update::ApplyToMatrix(lower, double_insert);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  // Erase-then-value of the erased position fails the same way.
  DeltaBatch erase_then_value;
  erase_then_value.Erase(1, 0);
  erase_then_value.UpdateValue(1, 0, 3.0);
  auto gone = update::ApplyToMatrix(lower, erase_then_value);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaBatchTest, MakeRandomBatchIsDeterministicAndApplies) {
  const Csr lower = MakeRandomLower({.rows = 200,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 61});
  for (const bool structural : {false, true}) {
    const DeltaBatch a = update::MakeRandomBatch(lower, 40, structural, 97);
    const DeltaBatch b = update::MakeRandomBatch(lower, 40, structural, 97);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.deltas()[i].kind, b.deltas()[i].kind);
      EXPECT_EQ(a.deltas()[i].row, b.deltas()[i].row);
      EXPECT_EQ(a.deltas()[i].col, b.deltas()[i].col);
      EXPECT_EQ(a.deltas()[i].value, b.deltas()[i].value);
    }
    EXPECT_EQ(a.value_only(), !structural);
    auto mutated = update::ApplyToMatrix(lower, a);
    ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
    EXPECT_TRUE(mutated->IsLowerTriangularWithDiagonal());
  }
}

TEST(IncrementalAnalyzerTest, ValueOnlyReusesAnalysisUntouched) {
  const Csr lower = MakeRandomLower({.rows = 300,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 71});
  const Analysis before = Analyze(lower, "m");
  const DeltaBatch batch =
      update::MakeRandomBatch(lower, 25, /*structural=*/false, 72);

  IncrementalAnalyzer analyzer;
  auto result = analyzer.Apply(lower, before, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->value_only);
  EXPECT_EQ(result->rows_releveled, 0);  // zero re-analysis on the fast path
  EXPECT_EQ(result->analysis_ms, 0.0);   // the analysis was reused untouched
  EXPECT_EQ(result->total_rows, lower.rows());

  auto oracle_matrix = update::ApplyToMatrix(lower, batch);
  ASSERT_TRUE(oracle_matrix.ok());
  EXPECT_EQ(result->matrix, *oracle_matrix);
  // Values changed but sparsity did not: the analysis is reused verbatim and
  // still matches the from-scratch oracle of the mutated matrix.
  ExpectAnalysisEqual(result->analysis, before);
  ExpectAnalysisEqual(result->analysis, Analyze(*oracle_matrix, "m"));
}

TEST(IncrementalAnalyzerTest, StructuralMatchesFromScratchOracle) {
  std::vector<Csr> matrices;
  matrices.push_back(MakeRandomLower({.rows = 250,
                                      .avg_strict_nnz_per_row = 2.5,
                                      .window = 0,
                                      .empty_row_fraction = 0.2,
                                      .seed = 81}));
  matrices.push_back(MakeRandomLower({.rows = 250,
                                      .avg_strict_nnz_per_row = 4.0,
                                      .window = 16,
                                      .empty_row_fraction = 0.0,
                                      .seed = 82}));
  matrices.push_back(MakeBanded({.rows = 200, .bandwidth = 8, .fill = 0.6,
                                 .force_chain = true, .seed = 83}));

  IncrementalAnalyzer analyzer;
  for (const Csr& lower : matrices) {
    const Analysis before = Analyze(lower, "m");
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      // A 50-delta structural batch plus an explicit single insert and a
      // single erase, each validated against the oracle independently.
      std::vector<DeltaBatch> batches;
      batches.push_back(
          update::MakeRandomBatch(lower, 50, /*structural=*/true, seed));
      const auto [ins_row, ins_col] =
          FindAbsentStrictLower(lower, static_cast<Idx>(seed % 50));
      DeltaBatch insert_one;
      insert_one.Insert(ins_row, ins_col, 0.25);
      batches.push_back(insert_one);
      const auto [del_row, del_col] =
          FindPresentStrictLower(lower, static_cast<Idx>(seed % 50));
      DeltaBatch erase_one;
      erase_one.Erase(del_row, del_col);
      batches.push_back(erase_one);

      for (const DeltaBatch& batch : batches) {
        auto result = analyzer.Apply(lower, before, batch);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_FALSE(result->value_only);
        EXPECT_GE(result->rows_releveled, 1);
        EXPECT_LE(result->rows_releveled, result->total_rows);

        auto oracle_matrix = update::ApplyToMatrix(lower, batch);
        ASSERT_TRUE(oracle_matrix.ok());
        ASSERT_EQ(result->matrix, *oracle_matrix);
        ExpectAnalysisEqual(result->analysis, Analyze(*oracle_matrix, "m"));
      }
    }
  }
}

TEST(IncrementalAnalyzerTest, ConeStaysLocalOnAChainedBand) {
  // On a chained band every row already depends on row-1, so adding one more
  // in-band dependency cannot change any level: the worklist pops exactly
  // the edited row, sees an unchanged level, and stops. This is the
  // incremental win the subsystem exists for — one row touched out of 400.
  const Csr lower = MakeBanded({.rows = 400, .bandwidth = 12, .fill = 0.5,
                                .force_chain = true, .seed = 91});
  const Analysis before = Analyze(lower, "band");
  Idx row = 0;
  Idx col = 0;
  for (Idx i = 300; i < lower.rows() && row == 0; ++i) {
    for (Idx j = std::max<Idx>(0, i - 12); j + 1 < i; ++j) {
      if (!HasEntry(lower, i, j)) {
        row = i;
        col = j;
        break;
      }
    }
  }
  ASSERT_GT(row, 0) << "band unexpectedly full";

  DeltaBatch batch;
  batch.Insert(row, col, 0.1);
  IncrementalAnalyzer analyzer;
  auto result = analyzer.Apply(lower, before, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_releveled, 1);
  EXPECT_EQ(result->total_rows, 400);
  auto oracle_matrix = update::ApplyToMatrix(lower, batch);
  ASSERT_TRUE(oracle_matrix.ok());
  ExpectAnalysisEqual(result->analysis, Analyze(*oracle_matrix, "band"));
}

TEST(IncrementalAnalyzerTest, PersistentConsumerGraphSurvivesManyBatches) {
  Csr lower = MakeRandomLower({.rows = 220,
                               .avg_strict_nnz_per_row = 3.0,
                               .window = 0,
                               .empty_row_fraction = 0.15,
                               .seed = 101});
  Analysis analysis = Analyze(lower, "m");
  update::ConsumerGraph graph = update::ConsumerGraph::Build(lower);

  IncrementalAnalyzer analyzer;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const DeltaBatch batch =
        update::MakeRandomBatch(lower, 20, /*structural=*/true, seed);
    auto result = analyzer.Apply(lower, analysis, batch, &graph);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto oracle_matrix = update::ApplyToMatrix(lower, batch);
    ASSERT_TRUE(oracle_matrix.ok());
    ASSERT_EQ(result->matrix, *oracle_matrix);
    ExpectAnalysisEqual(result->analysis, Analyze(*oracle_matrix, "m"));
    lower = std::move(result->matrix);
    analysis = std::move(result->analysis);
  }

  // After five rounds of patching, the carried graph matches a fresh
  // transpose build of the final matrix list-for-list.
  const update::ConsumerGraph fresh = update::ConsumerGraph::Build(lower);
  ASSERT_EQ(graph.rows(), fresh.rows());
  for (Idx j = 0; j < graph.rows(); ++j) {
    const auto a = graph.Consumers(j);
    const auto b = fresh.Consumers(j);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "consumer list of column " << j << " diverged";
  }
}

// ISSUE satellite: across all algorithms and lower+upper factors, post-delta
// solves are bit-identical to a fresh registration of the mutated matrix —
// for value-only batches, a single insert, a single delete, and a randomized
// 50-delta batch, across seeds.
TEST(UpdateBitIdentityTest, AllAlgorithmsLowerAndUpperAllDeltaKinds) {
  const std::vector<Algorithm> algorithms = {
      Algorithm::kSerialCpu,    Algorithm::kLevelSetCpu,
      Algorithm::kSyncFreeCpu,  Algorithm::kLevelSet,
      Algorithm::kSyncFree,     Algorithm::kSyncFreeCsr,
      Algorithm::kCusparse,     Algorithm::kCapelliniTwoPhase,
      Algorithm::kCapellini,    Algorithm::kHybrid,
  };
  const Csr lower = MakeRandomLower({.rows = 96,
                                     .avg_strict_nnz_per_row = 2.5,
                                     .window = 12,
                                     .empty_row_fraction = 0.15,
                                     .seed = 111});

  for (const std::uint64_t seed : {3ull, 11ull}) {
    std::vector<std::pair<std::string, DeltaBatch>> scenarios;
    scenarios.emplace_back(
        "value_only",
        update::MakeRandomBatch(lower, 12, /*structural=*/false, seed));
    const auto [ins_row, ins_col] =
        FindAbsentStrictLower(lower, static_cast<Idx>(seed));
    DeltaBatch insert_one;
    insert_one.Insert(ins_row, ins_col, 0.5);
    scenarios.emplace_back("single_insert", insert_one);
    const auto [del_row, del_col] =
        FindPresentStrictLower(lower, static_cast<Idx>(seed));
    DeltaBatch erase_one;
    erase_one.Erase(del_row, del_col);
    scenarios.emplace_back("single_delete", erase_one);
    scenarios.emplace_back(
        "batch50",
        update::MakeRandomBatch(lower, 50, /*structural=*/true, seed + 1));

    for (const auto& [label, batch] : scenarios) {
      SCOPED_TRACE(label + " seed=" + std::to_string(seed));
      // Streamed path: register the original, apply the delta, solve on the
      // swapped-in epoch.
      MatrixRegistry registry;
      auto handle = registry.Register(lower, "m", TinyOptions());
      ASSERT_TRUE(handle.ok());
      auto report = registry.ApplyDelta(*handle, batch);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      auto entry = registry.Acquire(*handle);
      ASSERT_TRUE(entry.ok());
      // The seeded analysis counts as analyzed — no re-analysis happened.
      EXPECT_TRUE((*entry)->solver.analyzed());

      // Oracle path: a fresh registration of the mutated matrix.
      auto mutated = update::ApplyToMatrix(lower, batch);
      ASSERT_TRUE(mutated.ok());
      ASSERT_EQ((*entry)->solver.matrix(), *mutated);
      MatrixRegistry fresh_registry;
      auto fresh_handle =
          fresh_registry.Register(*mutated, "m", TinyOptions());
      ASSERT_TRUE(fresh_handle.ok());
      auto fresh = fresh_registry.Acquire(*fresh_handle);
      ASSERT_TRUE(fresh.ok());

      const ReferenceProblem problem = MakeReferenceProblem(*mutated, seed);
      const Csr upper = ReverseSystem(*mutated);
      std::vector<Val> upper_b(problem.b.size());
      ReverseVector(problem.b, upper_b);

      for (const Algorithm algorithm : algorithms) {
        SCOPED_TRACE(AlgorithmName(algorithm));
        auto streamed = (*entry)->solver.Solve(algorithm, problem.b);
        auto oracle = (*fresh)->solver.Solve(algorithm, problem.b);
        ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
        ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
        EXPECT_EQ(FnvChecksum(streamed->x), FnvChecksum(oracle->x));

        // Upper-factor leg: the same mutated system mapped onto its upper
        // form solves to the same bits through SolveUpperSystem.
        auto upper_solve =
            SolveUpperSystem(upper, upper_b, algorithm, TinyOptions());
        ASSERT_TRUE(upper_solve.ok()) << upper_solve.status().ToString();
        std::vector<Val> unreversed(upper_solve->x.size());
        ReverseVector(upper_solve->x, unreversed);
        EXPECT_EQ(FnvChecksum(unreversed), FnvChecksum(oracle->x));
      }
    }
  }
}

TEST(RegistryUpdateTest, EpochBumpAndDeltaLogByteAccounting) {
  MatrixRegistry registry;
  const Csr lower = MakeRandomLower({.rows = 150,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 121});
  auto handle = registry.Register(lower, "m", TinyOptions());
  ASSERT_TRUE(handle.ok());
  const std::size_t bytes_before = registry.Snapshot().resident_bytes;
  EXPECT_EQ((*registry.Peek(*handle))->epoch, 0u);

  // Value-only: same structure, so the footprint grows by exactly the delta
  // log (matrix + level arrays keep their sizes).
  const DeltaBatch value_batch =
      update::MakeRandomBatch(lower, 10, /*structural=*/false, 122);
  auto report = registry.ApplyDelta(*handle, value_batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epoch, 1u);
  EXPECT_TRUE(report->value_only);
  EXPECT_EQ(report->rows_releveled, 0);
  EXPECT_EQ(report->analysis_ms, 0.0);  // value-only: no re-leveling ran
  EXPECT_EQ(report->total_rows, lower.rows());
  EXPECT_EQ(report->delta_bytes, value_batch.ByteSize());
  EXPECT_EQ(report->delta_log_bytes, value_batch.ByteSize());
  EXPECT_EQ(registry.Snapshot().resident_bytes,
            bytes_before + value_batch.ByteSize());
  EXPECT_EQ(registry.Snapshot().updates, 1u);

  // Structural: epoch climbs, the log accumulates across epochs.
  const Csr after_value = (*registry.Peek(*handle))->solver.matrix();
  const DeltaBatch structural_batch =
      update::MakeRandomBatch(after_value, 10, /*structural=*/true, 123);
  auto second = registry.ApplyDelta(*handle, structural_batch);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_FALSE(second->value_only);
  EXPECT_GE(second->rows_releveled, 1);
  EXPECT_EQ(second->delta_log_bytes,
            value_batch.ByteSize() + structural_batch.ByteSize());
  EXPECT_GT(second->analysis_ms, 0.0);  // the cone re-level was timed
  EXPECT_LE(second->analysis_ms, second->update_ms);
  EXPECT_EQ(registry.Snapshot().updates, 2u);

  // The resident entry is the mutated matrix, already analyzed, and its
  // analysis_ms is THIS epoch's incremental re-level time — not a verbatim
  // copy of the cold registration's full-analysis time (the PR-9 S3 bug).
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  auto oracle = update::ApplyToMatrix(after_value, structural_batch);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ((*entry)->solver.matrix(), *oracle);
  EXPECT_TRUE((*entry)->solver.analyzed());
  EXPECT_EQ((*entry)->analysis_ms, second->analysis_ms);
}

TEST(RegistryUpdateTest, InvalidBatchLeavesEntryUntouched) {
  MatrixRegistry registry;
  const Csr lower = HandMatrix();
  auto handle = registry.Register(lower, "hand", TinyOptions());
  ASSERT_TRUE(handle.ok());

  DeltaBatch bad;
  bad.Insert(1, 0, 1.0);  // already present
  auto report = registry.ApplyDelta(*handle, bad);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  auto entry = registry.Peek(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->epoch, 0u);
  EXPECT_EQ((*entry)->delta_log_bytes, 0u);
  EXPECT_EQ((*entry)->solver.matrix(), lower);
  EXPECT_EQ(registry.Snapshot().updates, 0u);
}

TEST(RegistryUpdateTest, UnknownHandleIsNotFound) {
  MatrixRegistry registry;
  DeltaBatch batch;
  batch.UpdateValue(0, 0, 1.0);
  auto report = registry.ApplyDelta(12345, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(RegistryUpdateTest, OverBudgetUpdateKeepsOldEpochResident) {
  const Csr lower = MakeRandomLower({.rows = 120,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 131});
  // Measure the exact footprint, then give the registry a budget the entry
  // fills completely: any delta log pushes the updated entry past it.
  std::size_t footprint = 0;
  {
    MatrixRegistry probe;
    auto probe_handle = probe.Register(lower, "probe", TinyOptions());
    ASSERT_TRUE(probe_handle.ok());
    footprint = probe.Snapshot().resident_bytes;
  }
  MatrixRegistry registry(RegistryOptions{.byte_budget = footprint});
  auto handle = registry.Register(lower, "m", TinyOptions());
  ASSERT_TRUE(handle.ok());

  const DeltaBatch batch =
      update::MakeRandomBatch(lower, 5, /*structural=*/false, 132);
  auto report = registry.ApplyDelta(*handle, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);

  // The old epoch stayed resident and still solves.
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->epoch, 0u);
  EXPECT_EQ((*entry)->solver.matrix(), lower);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 133);
  auto solve = (*entry)->solver.Solve(Algorithm::kSerialCpu, problem.b);
  ASSERT_TRUE(solve.ok());
  EXPECT_LE(MaxRelativeError(solve->x, problem.x_true), 1e-10);
}

TEST(RegistryUpdateTest, UpdateInvalidatesLearnedCostState) {
  MatrixRegistry registry;
  const Csr lower = MakeRandomLower({.rows = 150,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 141});
  auto handle = registry.Register(lower, "m", TinyOptions());
  ASSERT_TRUE(handle.ok());
  auto before = registry.Peek(*handle);
  ASSERT_TRUE(before.ok());
  (*before)->cost.Observe(123.0);
  EXPECT_EQ((*before)->cost.samples(), 1u);
  EXPECT_EQ((*before)->cost.EstimateMs(), 123.0);

  const DeltaBatch batch =
      update::MakeRandomBatch(lower, 8, /*structural=*/true, 142);
  auto report = registry.ApplyDelta(*handle, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The EWMA measured the previous epoch; the new entry is re-seeded from
  // the patched analysis with no observations.
  auto after = registry.Peek(*handle);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->cost.samples(), 0u);
  EXPECT_EQ((*after)->cost.EstimateMs(), (*after)->solver.CostHintMs());
}

// Tentpole acceptance: a solve admitted before ApplyDelta finishes on the
// pre-update snapshot while a solve admitted after runs on the new epoch —
// no barrier, no blocking, both bit-exact for their epoch.
TEST(ServiceUpdateTest, InFlightSolvesFinishOnTheirEpoch) {
  MatrixRegistry registry;
  const Csr lower = MakeRandomLower({.rows = 150,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 151});
  auto handle = registry.Register(lower, "m", TinyOptions());
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.start_paused = true;  // both requests queue before any solve runs
  SolveService service(&registry, options);

  const ReferenceProblem pre = MakeReferenceProblem(lower, 152);
  serve::RequestOptions serial;
  serial.algorithm = Algorithm::kSerialCpu;
  auto before_future = service.Submit(*handle, pre.b, serial);
  ASSERT_TRUE(before_future.ok()) << before_future.status().ToString();

  // Swap the epoch while the first request is still queued.
  const DeltaBatch batch =
      update::MakeRandomBatch(lower, 20, /*structural=*/true, 153);
  auto report = service.ApplyDelta(*handle, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epoch, 1u);

  auto mutated = update::ApplyToMatrix(lower, batch);
  ASSERT_TRUE(mutated.ok());
  const ReferenceProblem post = MakeReferenceProblem(*mutated, 154);
  auto after_future = service.Submit(*handle, post.b, serial);
  ASSERT_TRUE(after_future.ok()) << after_future.status().ToString();

  service.Start();
  serve::ServeResult before_result = before_future->get();
  serve::ServeResult after_result = after_future->get();
  ASSERT_TRUE(before_result.status.ok()) << before_result.status.ToString();
  ASSERT_TRUE(after_result.status.ok()) << after_result.status.ToString();

  // The first solve saw the PRE-update matrix (its EntryRef pinned epoch 0),
  // the second the post-update one — byte-compare both against direct solves
  // of the matching epoch's matrix.
  Solver pre_solver(lower, TinyOptions());
  Solver post_solver(*mutated, TinyOptions());
  auto pre_direct = pre_solver.Solve(Algorithm::kSerialCpu, pre.b);
  auto post_direct = post_solver.Solve(Algorithm::kSerialCpu, post.b);
  ASSERT_TRUE(pre_direct.ok());
  ASSERT_TRUE(post_direct.ok());
  EXPECT_EQ(FnvChecksum(before_result.solve.x), FnvChecksum(pre_direct->x));
  EXPECT_EQ(FnvChecksum(after_result.solve.x), FnvChecksum(post_direct->x));

  // Exactly-once accounting, both ledgers: the PR-4 request invariant and
  // the update invariant next to it.
  service.Shutdown();
  const auto totals = service.stats().totals();
  EXPECT_EQ(totals.requests + totals.failures + totals.deadline_misses +
                totals.rejections,
            2u);
  EXPECT_EQ(totals.requests, 2u);
  EXPECT_EQ(totals.updates_value + totals.updates_structural +
                totals.update_rejections,
            1u);
  EXPECT_EQ(totals.updates_structural, 1u);
  EXPECT_EQ(totals.update_rows_releveled,
            static_cast<std::uint64_t>(report->rows_releveled));
}

TEST(ServiceUpdateTest, ExactlyOnceUpdateAccountingIncludingRejections) {
  MatrixRegistry registry;
  const Csr lower = HandMatrix();
  auto handle = registry.Register(lower, "hand", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());

  DeltaBatch value_batch;
  value_batch.UpdateValue(1, 0, 2.5);
  ASSERT_TRUE(service.ApplyDelta(*handle, value_batch).ok());

  DeltaBatch structural_batch;
  structural_batch.Insert(2, 0, 0.5);
  ASSERT_TRUE(service.ApplyDelta(*handle, structural_batch).ok());

  DeltaBatch bad_batch;
  bad_batch.Erase(3, 0);  // absent -> kInvalidArgument
  auto bad = service.ApplyDelta(*handle, bad_batch);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto missing = service.ApplyDelta(9999, value_batch);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  service.Shutdown();
  auto after_shutdown = service.ApplyDelta(*handle, value_batch);
  ASSERT_FALSE(after_shutdown.ok());
  EXPECT_EQ(after_shutdown.status().code(), StatusCode::kFailedPrecondition);

  // Five calls, five records: one value, one structural, three rejections.
  const auto totals = service.stats().totals();
  EXPECT_EQ(totals.updates_value, 1u);
  EXPECT_EQ(totals.updates_structural, 1u);
  EXPECT_EQ(totals.update_rejections, 3u);
  EXPECT_EQ(totals.updates_value + totals.updates_structural +
                totals.update_rejections,
            5u);
  EXPECT_EQ(totals.update_delta_bytes,
            value_batch.ByteSize() + structural_batch.ByteSize());
}

TEST(ReplayUpdateTest, MixedTraceJsonRoundTrips) {
  serve::RequestTrace trace;
  serve::TraceRequest solve_a;
  solve_a.kind = serve::TraceEventKind::kSolve;
  solve_a.matrix = 0;
  solve_a.seed = 5;
  solve_a.deadline_ms = 2.5;
  trace.requests.push_back(solve_a);
  serve::TraceRequest structural_update;
  structural_update.kind = serve::TraceEventKind::kUpdate;
  structural_update.matrix = 0;
  structural_update.seed = 9;
  structural_update.update_deltas = 8;
  structural_update.structural = true;
  trace.requests.push_back(structural_update);
  serve::TraceRequest value_update;
  value_update.kind = serve::TraceEventKind::kUpdate;
  value_update.matrix = 2;
  value_update.seed = 10;
  value_update.update_deltas = 3;
  value_update.structural = false;
  trace.requests.push_back(value_update);
  serve::TraceRequest solve_b;
  solve_b.kind = serve::TraceEventKind::kSolve;
  solve_b.matrix = 1;
  solve_b.seed = 6;
  trace.requests.push_back(solve_b);

  const std::string path = testing::TempDir() + "update_trace_roundtrip.json";
  ASSERT_TRUE(serve::WriteTraceJson(trace, path).ok());
  auto read = serve::ReadTraceJson(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(read->requests[i].kind, trace.requests[i].kind);
    EXPECT_EQ(read->requests[i].matrix, trace.requests[i].matrix);
    EXPECT_EQ(read->requests[i].seed, trace.requests[i].seed);
    EXPECT_EQ(read->requests[i].deadline_ms, trace.requests[i].deadline_ms);
    EXPECT_EQ(read->requests[i].update_deltas,
              trace.requests[i].update_deltas);
    EXPECT_EQ(read->requests[i].structural, trace.requests[i].structural);
  }
  std::remove(path.c_str());
}

TEST(ReplayUpdateTest, InterleaveUpdatesIsDeterministicAndTargetsHotFactors) {
  const serve::RequestTrace base = serve::GenerateZipfTrace(60, 4, 1.1, 161);
  serve::RequestTrace a = base;
  serve::RequestTrace b = base;
  serve::InterleaveUpdates(a, 0.4, 6, 0.5, 162);
  serve::InterleaveUpdates(b, 0.4, 6, 0.5, 162);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  EXPECT_GT(a.requests.size(), base.requests.size());

  std::size_t updates = 0;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].kind, b.requests[i].kind);
    EXPECT_EQ(a.requests[i].matrix, b.requests[i].matrix);
    EXPECT_EQ(a.requests[i].seed, b.requests[i].seed);
    EXPECT_EQ(a.requests[i].structural, b.requests[i].structural);
    if (a.requests[i].kind != serve::TraceEventKind::kUpdate) continue;
    ++updates;
    EXPECT_EQ(a.requests[i].update_deltas, 6);
    // Every update follows a solve of the SAME matrix: hot factors get
    // updated in proportion to their traffic.
    ASSERT_GT(i, 0u);
    EXPECT_EQ(a.requests[i - 1].kind, serve::TraceEventKind::kSolve);
    EXPECT_EQ(a.requests[i - 1].matrix, a.requests[i].matrix);
  }
  EXPECT_GT(updates, 0u);
}

TEST(ReplayUpdateTest, MixedTraceReplayVerifiesEverySolution) {
  MatrixRegistry registry;
  std::vector<serve::MatrixHandle> handles;
  for (std::uint64_t seed = 171; seed < 174; ++seed) {
    const Csr lower = MakeRandomLower({.rows = 120,
                                       .avg_strict_nnz_per_row = 3.0,
                                       .window = 0,
                                       .empty_row_fraction = 0.1,
                                       .seed = seed});
    auto handle =
        registry.Register(lower, "m" + std::to_string(seed), TinyOptions());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  SolveService service(&registry, SolveService::DeterministicOptions());

  serve::RequestTrace trace = serve::GenerateZipfTrace(30, 3, 1.1, 175);
  serve::InterleaveUpdates(trace, 0.4, 6, 0.5, 176);
  std::size_t solve_events = 0;
  std::size_t update_events = 0;
  for (const auto& request : trace.requests) {
    (request.kind == serve::TraceEventKind::kSolve ? solve_events
                                                   : update_events)++;
  }
  ASSERT_GT(update_events, 0u);

  auto report = serve::ReplayTrace(service, handles, trace, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->submitted, solve_events);
  EXPECT_EQ(report->completed, solve_events);
  EXPECT_EQ(report->wrong, 0u);  // every solution verified vs its epoch
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->rejected, 0u);
  EXPECT_EQ(report->updates, update_events);
  EXPECT_EQ(report->updates_rejected, 0u);

  const auto totals = service.stats().totals();
  EXPECT_EQ(totals.updates_value + totals.updates_structural,
            report->updates);
  EXPECT_EQ(totals.update_rejections, report->updates_rejected);
  EXPECT_EQ(totals.update_rows_releveled, report->rows_releveled);
}

TEST(StatsUpdateTest, TableAndJsonCarryUpdateCounters) {
  MatrixRegistry registry;
  const Csr lower = HandMatrix();
  auto handle = registry.Register(lower, "hand", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());

  DeltaBatch value_batch;
  value_batch.UpdateValue(1, 0, 2.5);
  ASSERT_TRUE(service.ApplyDelta(*handle, value_batch).ok());
  DeltaBatch structural_batch;
  structural_batch.Insert(2, 0, 0.5);
  ASSERT_TRUE(service.ApplyDelta(*handle, structural_batch).ok());
  DeltaBatch bad_batch;
  bad_batch.Erase(3, 0);
  ASSERT_FALSE(service.ApplyDelta(*handle, bad_batch).ok());

  const serve::RegistrySnapshot snapshot = registry.Snapshot();
  const std::string table = service.stats().ToTable(&snapshot);
  EXPECT_NE(
      table.find("streaming updates: value_only=1 structural=1 rejected=1"),
      std::string::npos)
      << table;

  const std::string json = service.stats().ToJson(&snapshot);
  EXPECT_NE(json.find("\"updates_value\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"updates_structural\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"update_rejections\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"update_rows_releveled\""), std::string::npos);
  EXPECT_NE(json.find("\"update_delta_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"update_analysis_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"invalidation_causes\""), std::string::npos);
  EXPECT_NE(json.find("\"updates\": 2"), std::string::npos);  // registry view
  EXPECT_NE(json.find("\"analysis_cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"device_analyses\""), std::string::npos);
  EXPECT_NE(table.find("relevel_ms="), std::string::npos) << table;
}

}  // namespace
}  // namespace capellini
