// src/fleet: partitioner edge cases, the fleet determinism contract
// (byte-identity with the single-device solver, host-thread invariance) and
// partition-scoped fault injection (one killed device leaves independent
// devices clean).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/solver.h"
#include "fleet/comm.h"
#include "fleet/fleet.h"
#include "fleet/partition.h"
#include "fleet/shard.h"
#include "gen/banded.h"
#include "gen/random_lower.h"
#include "graph/dag.h"
#include "graph/levels.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/fault.h"

namespace capellini {
namespace fleet {
namespace {

Csr TestMatrix(Idx rows = 600) {
  return MakeRandomLower({.rows = rows,
                          .avg_strict_nnz_per_row = 3.0,
                          .window = 64,
                          .empty_row_fraction = 0.1,
                          .seed = 42});
}

/// Two Val vectors with identical bytes — the fleet determinism gate (plain
/// EXPECT_EQ on doubles would also pass -0.0 == 0.0 and miss a byte flip).
bool BytesEqual(const std::vector<Val>& a, const std::vector<Val>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Val)) == 0);
}

TEST(PartitionTest, CutsCoverAllRowsAndStayMonotone) {
  const Csr lower = TestMatrix();
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kContiguousNnz, PartitionStrategy::kLevelAware}) {
    const LevelSets levels = ComputeLevelSets(lower);
    auto part = PartitionRows(lower, 4, strategy, &levels);
    ASSERT_TRUE(part.ok()) << PartitionStrategyName(strategy);
    ASSERT_EQ(part->cuts.size(), 5u);
    EXPECT_EQ(part->cuts.front(), 0);
    EXPECT_EQ(part->cuts.back(), lower.rows());
    Idx covered = 0;
    for (int d = 0; d < part->num_devices(); ++d) {
      EXPECT_LE(part->RowBegin(d), part->RowEnd(d));
      covered += part->RowCount(d);
    }
    EXPECT_EQ(covered, lower.rows());
    // DeviceOf agrees with the blocks.
    for (Idx r = 0; r < lower.rows(); ++r) {
      const int d = part->DeviceOf(r);
      EXPECT_GE(r, part->RowBegin(d));
      EXPECT_LT(r, part->RowEnd(d));
    }
  }
}

TEST(PartitionTest, MoreDevicesThanRowsYieldsEmptyBlocks) {
  const Csr lower = MakeBidiagonal(3);
  auto part =
      PartitionRows(lower, 8, PartitionStrategy::kContiguousNnz, nullptr);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_devices(), 8);
  Idx covered = 0;
  int empty = 0;
  for (int d = 0; d < 8; ++d) {
    covered += part->RowCount(d);
    if (part->RowCount(d) == 0) ++empty;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_GE(empty, 5);  // at most 3 devices can hold a row
}

TEST(PartitionTest, SingleDeviceIsOneBlockWithNoCrossEdges) {
  const Csr lower = TestMatrix(128);
  auto part =
      PartitionRows(lower, 1, PartitionStrategy::kLevelAware, nullptr);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_devices(), 1);
  EXPECT_EQ(part->RowCount(0), 128);
  EXPECT_EQ(CountCrossEdges(lower, *part), 0);
}

TEST(PartitionTest, DiagonalOnlyMatrixHasNoCrossEdges) {
  // Unit diagonal only: no dependencies, so any cut set has an empty
  // boundary.
  const Idx rows = 97;
  std::vector<Idx> row_ptr(static_cast<std::size_t>(rows) + 1);
  std::vector<Idx> col_idx(static_cast<std::size_t>(rows));
  for (Idx r = 0; r <= rows; ++r) row_ptr[static_cast<std::size_t>(r)] = r;
  for (Idx r = 0; r < rows; ++r) col_idx[static_cast<std::size_t>(r)] = r;
  const Csr diag(rows, rows, std::move(row_ptr), std::move(col_idx),
                 std::vector<Val>(static_cast<std::size_t>(rows), 1.0));
  ASSERT_EQ(diag.nnz(), 97);
  for (const int k : {2, 3, 7, 97}) {
    auto part =
        PartitionRows(diag, k, PartitionStrategy::kContiguousNnz, nullptr);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(CountCrossEdges(diag, *part), 0) << "k=" << k;
  }
}

TEST(PartitionTest, SingletonPartitionsCountEveryDagEdge) {
  // One row per device: every strictly-lower nonzero crosses a cut, so the
  // boundary size must equal the dependency DAG's edge count exactly.
  const Csr lower = TestMatrix(200);
  // Uniform weights force exact one-row blocks (nnz weights would merge
  // light rows and leave some devices empty — legal, but not the identity
  // this test pins down).
  const std::vector<double> uniform(static_cast<std::size_t>(lower.rows()),
                                    1.0);
  auto part = PartitionRows(lower, static_cast<int>(lower.rows()),
                            PartitionStrategy::kContiguousNnz, nullptr,
                            uniform);
  ASSERT_TRUE(part.ok());
  for (int d = 0; d < part->num_devices(); ++d) {
    EXPECT_LE(part->RowCount(d), 1);
  }
  EXPECT_EQ(CountCrossEdges(lower, *part), DependencyDag(lower).num_edges());
}

TEST(PartitionTest, RejectsBadInputs) {
  const Csr lower = TestMatrix(32);
  EXPECT_FALSE(
      PartitionRows(lower, 0, PartitionStrategy::kContiguousNnz).ok());
  EXPECT_FALSE(
      PartitionRows(lower, -2, PartitionStrategy::kContiguousNnz).ok());
}

FleetConfig TestFleetConfig(int devices) {
  FleetConfig config;
  config.num_devices = devices;
  config.device = sim::TinyTestDevice();
  return config;
}

TEST(FleetTest, SingleDeviceIsByteIdenticalToSolver) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  SolverOptions solver_options;
  solver_options.device = sim::TinyTestDevice();
  const Solver solver(lower, solver_options);
  auto solo = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(solo.ok());

  DeviceFleet one(TestFleetConfig(1));
  auto result = FleetSolver(&one).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_TRUE(BytesEqual(result->x, solo->x));
  EXPECT_EQ(result->stats.cross_edges, 0);
  EXPECT_EQ(result->stats.total_messages, 0u);
}

TEST(FleetTest, MultiDeviceMatchesSingleDeviceBytes) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 23);
  SolverOptions solver_options;
  solver_options.device = sim::TinyTestDevice();
  const Solver solver(lower, solver_options);
  auto solo = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(solo.ok());

  for (const int k : {2, 4}) {
    DeviceFleet devices(TestFleetConfig(k));
    auto result = FleetSolver(&devices).Solve(solver, problem.b);
    ASSERT_TRUE(result.ok()) << "k=" << k;
    ASSERT_TRUE(result->status.ok()) << "k=" << k;
    EXPECT_TRUE(BytesEqual(result->x, solo->x)) << "k=" << k;
    EXPECT_GT(result->stats.makespan_cycles, 0u);
    EXPECT_GE(result->stats.critical_device, 0);
  }
}

TEST(FleetTest, HostThreadCountNeverChangesResults) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 31);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});

  std::vector<Val> reference;
  std::uint64_t reference_makespan = 0;
  for (const int host_threads : {1, 2, 8}) {
    FleetConfig config = TestFleetConfig(4);
    config.host_threads = host_threads;
    DeviceFleet devices(config);
    auto result = FleetSolver(&devices).Solve(solver, problem.b);
    ASSERT_TRUE(result.ok()) << "host_threads=" << host_threads;
    ASSERT_TRUE(result->status.ok());
    if (reference.empty()) {
      reference = result->x;
      reference_makespan = result->stats.makespan_cycles;
    } else {
      // Bytes AND simulated timing: the comm schedule is fixed by the
      // partition, not by which host thread delivered a message first.
      EXPECT_TRUE(BytesEqual(result->x, reference))
          << "host_threads=" << host_threads;
      EXPECT_EQ(result->stats.makespan_cycles, reference_makespan)
          << "host_threads=" << host_threads;
    }
  }
}

TEST(FleetTest, EmptyBlocksSolveCleanly) {
  const Csr lower = MakeBidiagonal(5);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 3);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});
  DeviceFleet devices(TestFleetConfig(8));  // more devices than rows
  auto result = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  for (std::size_t i = 0; i < result->x.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->x[i], problem.x_true[i]) << "row " << i;
  }
}

TEST(FleetTest, CommChargesLatencyAndSerializesLinks) {
  CommModel comm(CommConfig{.latency_cycles = 100,
                            .bandwidth_bytes_per_cycle = 4.0,
                            .bytes_per_message = 12},
                 2);
  // 12 bytes at 4 B/cycle = 3 wire cycles + 100 latency.
  EXPECT_EQ(comm.Deliver(0, 1, 1000), 1103u);
  // Same link, same publish cycle: the second message queues behind the
  // first's wire time (departs at 1003).
  EXPECT_EQ(comm.Deliver(0, 1, 1000), 1106u);
  EXPECT_EQ(comm.total_messages(), 2u);
  EXPECT_EQ(comm.total_bytes(), 24u);
}

TEST(FleetTest, ScopedFaultPlanKillsOnePartitionOthersFinish) {
  // A banded chain: every device depends on its predecessor, so killing the
  // MIDDLE device must leave device 0 clean, fail device 1 with a device
  // error, and fail the downstream devices with upstream errors.
  const Csr lower = MakeBanded({.rows = 256, .bandwidth = 4, .fill = 0.8});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 13);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});

  FleetConfig config = TestFleetConfig(4);
  config.device.no_progress_cycles = 30'000;  // fast watchdog
  config.strategy = PartitionStrategy::kContiguousNnz;
  DeviceFleet devices(config);

  // First find device 1's row block, then scope a kill-plan to exactly it.
  auto dry = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(dry.ok());
  ASSERT_TRUE(dry->status.ok());
  const Idx victim_begin = dry->partition.RowBegin(1);
  const Idx victim_end = dry->partition.RowEnd(1);
  ASSERT_LT(victim_begin, victim_end);

  sim::FaultPlan plan;
  plan.seed = 77;
  plan.drop_publish_rate = 1.0;  // every publish in scope is dropped
  plan.row_begin = victim_begin;
  plan.row_end = victim_end;
  std::vector<sim::FaultInjector> injectors(4);
  for (int d = 0; d < 4; ++d) {
    injectors[static_cast<std::size_t>(d)].Reseed(plan);
    devices.set_fault_injector(d, &injectors[static_cast<std::size_t>(d)]);
  }

  auto result = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());

  const std::vector<DeviceStats>& ds = result->stats.devices;
  ASSERT_EQ(ds.size(), 4u);
  // Device 0 is upstream of the fault scope: clean, and its rows are exact.
  EXPECT_TRUE(ds[0].status.ok());
  for (Idx r = 0; r < ds[0].row_end; ++r) {
    EXPECT_DOUBLE_EQ(result->x[static_cast<std::size_t>(r)],
                     problem.x_true[static_cast<std::size_t>(r)]);
  }
  // The victim died on its own device (watchdog deadlock: its local rows
  // spin on dropped flags); dependents failed fast on the upstream loss.
  EXPECT_EQ(ds[1].status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(ds[2].status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(ds[3].status.code(), StatusCode::kDeadlock);
  // Only the victim's injector fired: the plan's row scope excluded every
  // other device's rows.
  EXPECT_GT(injectors[1].counts().total(), 0u);
  EXPECT_EQ(injectors[0].counts().total(), 0u);
  EXPECT_EQ(injectors[2].counts().total(), 0u);
  EXPECT_EQ(injectors[3].counts().total(), 0u);
}

// --- ShardedSolveService placement-ledger reconciliation (PR 9) ------------

SolverOptions TinySolverOptions() {
  return SolverOptions{.device = sim::TinyTestDevice()};
}

Csr ShardMatrix(Idx components_per_level, std::uint64_t seed) {
  return MakeRandomLower({.rows = components_per_level * 6,
                          .avg_strict_nnz_per_row = 2.0,
                          .window = 32,
                          .empty_row_fraction = 0.0,
                          .seed = seed});
}

TEST(ShardTest, LedgerDropsEvictedEntriesOnReconcile) {
  // Regression for the grow-only ledger: device 0 holds a BIG matrix,
  // device 1 a small one. Evicting the big matrix from device 0's registry
  // must let the next placement land on device 0 — without reconciliation
  // the stale ledger keeps pricing device 0 as the heavier shard forever.
  ShardedSolveService shard({.num_devices = 2});
  auto big = shard.Register(ShardMatrix(300, 1), "big", TinySolverOptions());
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->device, 0);  // empty fleet: ties go to device 0
  auto small =
      shard.Register(ShardMatrix(20, 2), "small", TinySolverOptions());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->device, 1);  // big > small, so device 1 was lighter

  const double placed_before = shard.PlacedCostMs(0);
  EXPECT_GT(placed_before, 0.0);
  ASSERT_TRUE(shard.registry(0).Evict(big->handle));

  // The next placement reconciles: device 0's ledger empties and wins.
  auto next =
      shard.Register(ShardMatrix(20, 3), "next", TinySolverOptions());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->device, 0);
  // Only "next" remains on device 0's ledger — the evicted cost is gone.
  EXPECT_LT(shard.PlacedCostMs(0), placed_before);
}

TEST(ShardTest, LedgerRepricesFromObservedCosts) {
  // The ledger must track CostModel::EstimateMs(), not the analytic seed it
  // was placed with: feed the cost model observations and check the next
  // reconcile reprices the device.
  ShardedSolveService shard({.num_devices = 1});
  auto handle = shard.Register(ShardMatrix(50, 4), "m", TinySolverOptions());
  ASSERT_TRUE(handle.ok());
  const double seeded = shard.PlacedCostMs(0);

  const serve::MatrixRegistry::EntryRef entry =
      shard.registry(0).TryPeek(handle->handle);
  ASSERT_NE(entry, nullptr);
  const double observed = seeded * 16.0 + 1.0;
  entry->cost.Observe(observed);
  EXPECT_DOUBLE_EQ(shard.PlacedCostMs(0), seeded);  // not reconciled yet

  // Any placement decision reconciles every device's ledger.
  ASSERT_TRUE(
      shard.Register(ShardMatrix(20, 5), "other", TinySolverOptions()).ok());
  EXPECT_GT(shard.PlacedCostMs(0), observed * 0.9);
}

TEST(ShardTest, ApplyDeltaRoutesToOwnerAndRefreshesLedger) {
  ShardedSolveService shard({.num_devices = 2});
  const Csr matrix = ShardMatrix(40, 6);
  auto a = shard.Register(matrix, "a", TinySolverOptions());
  auto b = shard.Register(ShardMatrix(40, 7), "b", TinySolverOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_NE(a->device, b->device);

  const update::DeltaBatch batch =
      update::MakeRandomBatch(matrix, 8, /*structural=*/true, 99);
  auto report = shard.ApplyDelta(*a, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epoch, 1u);
  EXPECT_FALSE(report->value_only);
  EXPECT_GT(report->rows_releveled, 0);
  // The update hit the owning device's registry only.
  EXPECT_EQ(shard.registry(a->device).Snapshot().updates, 1u);
  EXPECT_EQ(shard.registry(b->device).Snapshot().updates, 0u);
  // The ledger entry was refreshed from the post-update cost model.
  const serve::MatrixRegistry::EntryRef entry =
      shard.registry(a->device).TryPeek(a->handle);
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(shard.PlacedCostMs(a->device), entry->cost.EstimateMs());

  // Out-of-range devices are rejected, matching Submit's contract.
  auto bad = shard.ApplyDelta(ShardedHandle{7, a->handle}, batch);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fleet
}  // namespace capellini
