// src/fleet: partitioner edge cases, the fleet determinism contract
// (byte-identity with the single-device solver, host-thread invariance) and
// partition-scoped fault injection (one killed device leaves independent
// devices clean).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/solver.h"
#include "fleet/comm.h"
#include "fleet/fleet.h"
#include "fleet/partition.h"
#include "fleet/shard.h"
#include "gen/banded.h"
#include "gen/random_lower.h"
#include "graph/dag.h"
#include "graph/levels.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/fault.h"

namespace capellini {
namespace fleet {
namespace {

Csr TestMatrix(Idx rows = 600) {
  return MakeRandomLower({.rows = rows,
                          .avg_strict_nnz_per_row = 3.0,
                          .window = 64,
                          .empty_row_fraction = 0.1,
                          .seed = 42});
}

/// Two Val vectors with identical bytes — the fleet determinism gate (plain
/// EXPECT_EQ on doubles would also pass -0.0 == 0.0 and miss a byte flip).
bool BytesEqual(const std::vector<Val>& a, const std::vector<Val>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Val)) == 0);
}

TEST(PartitionTest, CutsCoverAllRowsAndStayMonotone) {
  const Csr lower = TestMatrix();
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kContiguousNnz, PartitionStrategy::kLevelAware}) {
    const LevelSets levels = ComputeLevelSets(lower);
    auto part = PartitionRows(lower, 4, strategy, &levels);
    ASSERT_TRUE(part.ok()) << PartitionStrategyName(strategy);
    ASSERT_EQ(part->cuts.size(), 5u);
    EXPECT_EQ(part->cuts.front(), 0);
    EXPECT_EQ(part->cuts.back(), lower.rows());
    Idx covered = 0;
    for (int d = 0; d < part->num_devices(); ++d) {
      EXPECT_LE(part->RowBegin(d), part->RowEnd(d));
      covered += part->RowCount(d);
    }
    EXPECT_EQ(covered, lower.rows());
    // DeviceOf agrees with the blocks.
    for (Idx r = 0; r < lower.rows(); ++r) {
      const int d = part->DeviceOf(r);
      EXPECT_GE(r, part->RowBegin(d));
      EXPECT_LT(r, part->RowEnd(d));
    }
  }
}

TEST(PartitionTest, MoreDevicesThanRowsYieldsEmptyBlocks) {
  const Csr lower = MakeBidiagonal(3);
  auto part =
      PartitionRows(lower, 8, PartitionStrategy::kContiguousNnz, nullptr);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_devices(), 8);
  Idx covered = 0;
  int empty = 0;
  for (int d = 0; d < 8; ++d) {
    covered += part->RowCount(d);
    if (part->RowCount(d) == 0) ++empty;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_GE(empty, 5);  // at most 3 devices can hold a row
}

TEST(PartitionTest, SingleDeviceIsOneBlockWithNoCrossEdges) {
  const Csr lower = TestMatrix(128);
  auto part =
      PartitionRows(lower, 1, PartitionStrategy::kLevelAware, nullptr);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_devices(), 1);
  EXPECT_EQ(part->RowCount(0), 128);
  EXPECT_EQ(CountCrossEdges(lower, *part), 0);
}

TEST(PartitionTest, DiagonalOnlyMatrixHasNoCrossEdges) {
  // Unit diagonal only: no dependencies, so any cut set has an empty
  // boundary.
  const Idx rows = 97;
  std::vector<Idx> row_ptr(static_cast<std::size_t>(rows) + 1);
  std::vector<Idx> col_idx(static_cast<std::size_t>(rows));
  for (Idx r = 0; r <= rows; ++r) row_ptr[static_cast<std::size_t>(r)] = r;
  for (Idx r = 0; r < rows; ++r) col_idx[static_cast<std::size_t>(r)] = r;
  const Csr diag(rows, rows, std::move(row_ptr), std::move(col_idx),
                 std::vector<Val>(static_cast<std::size_t>(rows), 1.0));
  ASSERT_EQ(diag.nnz(), 97);
  for (const int k : {2, 3, 7, 97}) {
    auto part =
        PartitionRows(diag, k, PartitionStrategy::kContiguousNnz, nullptr);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(CountCrossEdges(diag, *part), 0) << "k=" << k;
  }
}

TEST(PartitionTest, SingletonPartitionsCountEveryDagEdge) {
  // One row per device: every strictly-lower nonzero crosses a cut, so the
  // boundary size must equal the dependency DAG's edge count exactly.
  const Csr lower = TestMatrix(200);
  // Uniform weights force exact one-row blocks (nnz weights would merge
  // light rows and leave some devices empty — legal, but not the identity
  // this test pins down).
  const std::vector<double> uniform(static_cast<std::size_t>(lower.rows()),
                                    1.0);
  auto part = PartitionRows(lower, static_cast<int>(lower.rows()),
                            PartitionStrategy::kContiguousNnz, nullptr,
                            uniform);
  ASSERT_TRUE(part.ok());
  for (int d = 0; d < part->num_devices(); ++d) {
    EXPECT_LE(part->RowCount(d), 1);
  }
  EXPECT_EQ(CountCrossEdges(lower, *part), DependencyDag(lower).num_edges());
}

TEST(PartitionTest, RejectsBadInputs) {
  const Csr lower = TestMatrix(32);
  EXPECT_FALSE(
      PartitionRows(lower, 0, PartitionStrategy::kContiguousNnz).ok());
  EXPECT_FALSE(
      PartitionRows(lower, -2, PartitionStrategy::kContiguousNnz).ok());
}

FleetConfig TestFleetConfig(int devices) {
  FleetConfig config;
  config.num_devices = devices;
  config.device = sim::TinyTestDevice();
  return config;
}

TEST(FleetTest, SingleDeviceIsByteIdenticalToSolver) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  SolverOptions solver_options;
  solver_options.device = sim::TinyTestDevice();
  const Solver solver(lower, solver_options);
  auto solo = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(solo.ok());

  DeviceFleet one(TestFleetConfig(1));
  auto result = FleetSolver(&one).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_TRUE(BytesEqual(result->x, solo->x));
  EXPECT_EQ(result->stats.cross_edges, 0);
  EXPECT_EQ(result->stats.total_messages, 0u);
}

TEST(FleetTest, MultiDeviceMatchesSingleDeviceBytes) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 23);
  SolverOptions solver_options;
  solver_options.device = sim::TinyTestDevice();
  const Solver solver(lower, solver_options);
  auto solo = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(solo.ok());

  for (const int k : {2, 4}) {
    DeviceFleet devices(TestFleetConfig(k));
    auto result = FleetSolver(&devices).Solve(solver, problem.b);
    ASSERT_TRUE(result.ok()) << "k=" << k;
    ASSERT_TRUE(result->status.ok()) << "k=" << k;
    EXPECT_TRUE(BytesEqual(result->x, solo->x)) << "k=" << k;
    EXPECT_GT(result->stats.makespan_cycles, 0u);
    EXPECT_GE(result->stats.critical_device, 0);
  }
}

TEST(FleetTest, HostThreadCountNeverChangesResults) {
  const Csr lower = TestMatrix();
  const ReferenceProblem problem = MakeReferenceProblem(lower, 31);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});

  std::vector<Val> reference;
  std::uint64_t reference_makespan = 0;
  for (const int host_threads : {1, 2, 8}) {
    FleetConfig config = TestFleetConfig(4);
    config.host_threads = host_threads;
    DeviceFleet devices(config);
    auto result = FleetSolver(&devices).Solve(solver, problem.b);
    ASSERT_TRUE(result.ok()) << "host_threads=" << host_threads;
    ASSERT_TRUE(result->status.ok());
    if (reference.empty()) {
      reference = result->x;
      reference_makespan = result->stats.makespan_cycles;
    } else {
      // Bytes AND simulated timing: the comm schedule is fixed by the
      // partition, not by which host thread delivered a message first.
      EXPECT_TRUE(BytesEqual(result->x, reference))
          << "host_threads=" << host_threads;
      EXPECT_EQ(result->stats.makespan_cycles, reference_makespan)
          << "host_threads=" << host_threads;
    }
  }
}

TEST(FleetTest, EmptyBlocksSolveCleanly) {
  const Csr lower = MakeBidiagonal(5);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 3);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});
  DeviceFleet devices(TestFleetConfig(8));  // more devices than rows
  auto result = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  for (std::size_t i = 0; i < result->x.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->x[i], problem.x_true[i]) << "row " << i;
  }
}

TEST(FleetTest, CommChargesLatencyAndSerializesLinks) {
  CommModel comm(CommConfig{.latency_cycles = 100,
                            .bandwidth_bytes_per_cycle = 4.0,
                            .bytes_per_message = 12},
                 2);
  // 12 bytes at 4 B/cycle = 3 wire cycles + 100 latency.
  EXPECT_EQ(comm.Deliver(0, 1, 1000), 1103u);
  // Same link, same publish cycle: the second message queues behind the
  // first's wire time (departs at 1003).
  EXPECT_EQ(comm.Deliver(0, 1, 1000), 1106u);
  EXPECT_EQ(comm.total_messages(), 2u);
  EXPECT_EQ(comm.total_bytes(), 24u);
}

TEST(FleetTest, ScopedFaultPlanKillsOnePartitionOthersFinish) {
  // A banded chain: every device depends on its predecessor, so killing the
  // MIDDLE device must leave device 0 clean, fail device 1 with a device
  // error, and fail the downstream devices with upstream errors.
  const Csr lower = MakeBanded({.rows = 256, .bandwidth = 4, .fill = 0.8});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 13);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});

  FleetConfig config = TestFleetConfig(4);
  config.device.no_progress_cycles = 30'000;  // fast watchdog
  config.strategy = PartitionStrategy::kContiguousNnz;
  DeviceFleet devices(config);

  // First find device 1's row block, then scope a kill-plan to exactly it.
  auto dry = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(dry.ok());
  ASSERT_TRUE(dry->status.ok());
  const Idx victim_begin = dry->partition.RowBegin(1);
  const Idx victim_end = dry->partition.RowEnd(1);
  ASSERT_LT(victim_begin, victim_end);

  sim::FaultPlan plan;
  plan.seed = 77;
  plan.drop_publish_rate = 1.0;  // every publish in scope is dropped
  plan.row_begin = victim_begin;
  plan.row_end = victim_end;
  std::vector<sim::FaultInjector> injectors(4);
  for (int d = 0; d < 4; ++d) {
    injectors[static_cast<std::size_t>(d)].Reseed(plan);
    devices.set_fault_injector(d, &injectors[static_cast<std::size_t>(d)]);
  }

  auto result = FleetSolver(&devices).Solve(solver, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());

  const std::vector<DeviceStats>& ds = result->stats.devices;
  ASSERT_EQ(ds.size(), 4u);
  // Device 0 is upstream of the fault scope: clean, and its rows are exact.
  EXPECT_TRUE(ds[0].status.ok());
  for (Idx r = 0; r < ds[0].row_end; ++r) {
    EXPECT_DOUBLE_EQ(result->x[static_cast<std::size_t>(r)],
                     problem.x_true[static_cast<std::size_t>(r)]);
  }
  // The victim died on its own device (watchdog deadlock: its local rows
  // spin on dropped flags); dependents failed fast on the upstream loss.
  EXPECT_EQ(ds[1].status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(ds[2].status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(ds[3].status.code(), StatusCode::kDeadlock);
  // Only the victim's injector fired: the plan's row scope excluded every
  // other device's rows.
  EXPECT_GT(injectors[1].counts().total(), 0u);
  EXPECT_EQ(injectors[0].counts().total(), 0u);
  EXPECT_EQ(injectors[2].counts().total(), 0u);
  EXPECT_EQ(injectors[3].counts().total(), 0u);
}

// --- ShardedSolveService placement-ledger reconciliation (PR 9) ------------

SolverOptions TinySolverOptions() {
  return SolverOptions{.device = sim::TinyTestDevice()};
}

Csr ShardMatrix(Idx components_per_level, std::uint64_t seed) {
  return MakeRandomLower({.rows = components_per_level * 6,
                          .avg_strict_nnz_per_row = 2.0,
                          .window = 32,
                          .empty_row_fraction = 0.0,
                          .seed = seed});
}

TEST(ShardTest, LedgerDropsEvictedEntriesOnReconcile) {
  // Regression for the grow-only ledger: device 0 holds a BIG matrix,
  // device 1 a small one. Evicting the big matrix from device 0's registry
  // must let the next placement land on device 0 — without reconciliation
  // the stale ledger keeps pricing device 0 as the heavier shard forever.
  ShardedSolveService shard({.num_devices = 2});
  auto big = shard.Register(ShardMatrix(300, 1), "big", TinySolverOptions());
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->device, 0);  // empty fleet: ties go to device 0
  auto small =
      shard.Register(ShardMatrix(20, 2), "small", TinySolverOptions());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->device, 1);  // big > small, so device 1 was lighter

  const double placed_before = shard.PlacedCostMs(0);
  EXPECT_GT(placed_before, 0.0);
  ASSERT_TRUE(shard.registry(0).Evict(big->handle));

  // The next placement reconciles: device 0's ledger empties and wins.
  auto next =
      shard.Register(ShardMatrix(20, 3), "next", TinySolverOptions());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->device, 0);
  // Only "next" remains on device 0's ledger — the evicted cost is gone.
  EXPECT_LT(shard.PlacedCostMs(0), placed_before);
}

TEST(ShardTest, LedgerRepricesFromObservedCosts) {
  // The ledger must track CostModel::EstimateMs(), not the analytic seed it
  // was placed with: feed the cost model observations and check the next
  // reconcile reprices the device.
  ShardedSolveService shard({.num_devices = 1});
  auto handle = shard.Register(ShardMatrix(50, 4), "m", TinySolverOptions());
  ASSERT_TRUE(handle.ok());
  const double seeded = shard.PlacedCostMs(0);

  const serve::MatrixRegistry::EntryRef entry =
      shard.registry(0).TryPeek(handle->handle);
  ASSERT_NE(entry, nullptr);
  const double observed = seeded * 16.0 + 1.0;
  entry->cost.Observe(observed);
  EXPECT_DOUBLE_EQ(shard.PlacedCostMs(0), seeded);  // not reconciled yet

  // Any placement decision reconciles every device's ledger.
  ASSERT_TRUE(
      shard.Register(ShardMatrix(20, 5), "other", TinySolverOptions()).ok());
  EXPECT_GT(shard.PlacedCostMs(0), observed * 0.9);
}

TEST(ShardTest, ApplyDeltaRoutesToOwnerAndRefreshesLedger) {
  ShardedSolveService shard({.num_devices = 2});
  const Csr matrix = ShardMatrix(40, 6);
  auto a = shard.Register(matrix, "a", TinySolverOptions());
  auto b = shard.Register(ShardMatrix(40, 7), "b", TinySolverOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_NE(a->device, b->device);

  const update::DeltaBatch batch =
      update::MakeRandomBatch(matrix, 8, /*structural=*/true, 99);
  auto report = shard.ApplyDelta(*a, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epoch, 1u);
  EXPECT_FALSE(report->value_only);
  EXPECT_GT(report->rows_releveled, 0);
  // The update hit the owning device's registry only.
  EXPECT_EQ(shard.registry(a->device).Snapshot().updates, 1u);
  EXPECT_EQ(shard.registry(b->device).Snapshot().updates, 0u);
  // The ledger entry was refreshed from the post-update cost model.
  const serve::MatrixRegistry::EntryRef entry =
      shard.registry(a->device).TryPeek(a->handle);
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(shard.PlacedCostMs(a->device), entry->cost.EstimateMs());

  // Out-of-range devices are rejected, matching Submit's contract.
  auto bad = shard.ApplyDelta(ShardedHandle{7, a->handle}, batch);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- Fleet self-healing (PR 10, DESIGN.md §4j) ------------------------------

TEST(FaultTest, ScopedTidOffsetRestoresOnExit) {
  sim::FaultInjector injector;
  injector.set_tid_offset(5);
  {
    sim::ScopedTidOffset guard(&injector, 42);
    EXPECT_EQ(injector.tid_offset(), 42);
  }
  EXPECT_EQ(injector.tid_offset(), 5);
  // Null injector: the guard must be a no-op, not a crash.
  sim::ScopedTidOffset null_guard(nullptr, 7);
}

FleetConfig RecoveryFleetConfig(int devices) {
  FleetConfig config;
  config.num_devices = devices;
  config.device = sim::TinyTestDevice();
  config.device.no_progress_cycles = 30'000;  // fast watchdog
  config.strategy = PartitionStrategy::kContiguousNnz;
  config.host_threads = 1;
  config.recovery.enabled = true;
  return config;
}

/// Kill-one-device scenario: a banded chain (every partition depends on its
/// predecessor) with a drop-every-publish injector on `victim` only.
struct KillScenario {
  Csr lower = MakeBanded({.rows = 256, .bandwidth = 4, .fill = 0.8});
  ReferenceProblem problem = MakeReferenceProblem(lower, 13);
  Solver solver{lower, SolverOptions{.device = sim::TinyTestDevice()}};

  Expected<FleetResult> Run(int devices, int victim, std::uint64_t seed = 77,
                            bool recovery = true) {
    FleetConfig config = RecoveryFleetConfig(devices);
    config.recovery.enabled = recovery;
    DeviceFleet fleet(config);
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.drop_publish_rate = 1.0;
    injector.Reseed(plan);
    if (victim >= 0) fleet.set_fault_injector(victim, &injector);
    return FleetSolver(&fleet).Solve(solver, problem.b);
  }

  std::vector<Val> CleanX(int devices) {
    auto clean = Run(devices, /*victim=*/-1, 0, /*recovery=*/false);
    EXPECT_TRUE(clean.ok() && clean->status.ok());
    return clean->x;
  }

  sim::FaultInjector injector;
};

TEST(FleetRecoveryTest, SurvivorRungRecoversKilledMiddleDevice) {
  KillScenario scenario;
  const std::vector<Val> clean = scenario.CleanX(4);
  auto result = scenario.Run(4, /*victim=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_TRUE(result->verification.passed);
  EXPECT_TRUE(BytesEqual(result->x, clean));

  // The victim deadlocked on-device and re-executed on the designated
  // survivor: device 0, the lowest-indexed clean first pass.
  const FleetStats& stats = result->stats;
  ASSERT_GE(stats.failovers.size(), 1u);
  const FailoverRecord& victim = stats.failovers.front();
  EXPECT_EQ(victim.device, 1);
  EXPECT_FALSE(victim.upstream_induced);
  EXPECT_EQ(victim.recovered_on, 0);
  EXPECT_TRUE(victim.verified);
  // Downstream partitions never launched (fail-fast on the upstream loss)
  // and recovered on their own, presumed-healthy devices.
  for (std::size_t i = 1; i < stats.failovers.size(); ++i) {
    const FailoverRecord& record = stats.failovers[i];
    EXPECT_TRUE(record.upstream_induced);
    EXPECT_EQ(record.recovered_on, record.device);
  }
  // First-pass outcomes stay visible next to the recovery markers.
  EXPECT_EQ(stats.devices[1].status.code(), StatusCode::kDeadlock);
  EXPECT_TRUE(stats.devices[1].failed_over);
  EXPECT_EQ(stats.devices[1].recovered_on, 0);
  EXPECT_GT(stats.rows_reexecuted, 0u);
  EXPECT_GE(stats.device_rung_recoveries, stats.failovers.size());
}

TEST(FleetRecoveryTest, HostRungRecoversWhenNoSurvivorExists) {
  // Killing device 0 of 2 drags device 1 down too (the chain), so no device
  // rung is available for the victim: the host serial rung must heal it,
  // bit-for-bit, and device 1 then recovers on itself.
  KillScenario scenario;
  const std::vector<Val> clean = scenario.CleanX(2);
  auto result = scenario.Run(2, /*victim=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_TRUE(result->verification.passed);
  EXPECT_TRUE(BytesEqual(result->x, clean));

  ASSERT_EQ(result->stats.failovers.size(), 2u);
  EXPECT_EQ(result->stats.failovers[0].device, 0);
  EXPECT_EQ(result->stats.failovers[0].recovered_on, kHostExecutor);
  EXPECT_EQ(result->stats.failovers[1].device, 1);
  EXPECT_EQ(result->stats.failovers[1].recovered_on, 1);
  EXPECT_EQ(result->stats.host_rung_recoveries, 1u);
  EXPECT_EQ(result->stats.device_rung_recoveries, 1u);
}

TEST(FleetRecoveryTest, SameSeedReplaysIdenticalFailoverPath) {
  KillScenario scenario;
  auto first = scenario.Run(4, /*victim=*/2, /*seed=*/123);
  auto replay = scenario.Run(4, /*victim=*/2, /*seed=*/123);
  ASSERT_TRUE(first.ok() && replay.ok());
  ASSERT_TRUE(first->status.ok() && replay->status.ok());
  EXPECT_TRUE(BytesEqual(first->x, replay->x));
  ASSERT_EQ(first->stats.failovers.size(), replay->stats.failovers.size());
  for (std::size_t i = 0; i < first->stats.failovers.size(); ++i) {
    const FailoverRecord& a = first->stats.failovers[i];
    const FailoverRecord& b = replay->stats.failovers[i];
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.upstream_induced, b.upstream_induced);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.recovered_on, b.recovered_on);
    EXPECT_EQ(a.verified, b.verified);
  }
}

TEST(FleetRecoveryTest, ZeroFaultRunIsByteIdenticalWithRecoveryEnabled) {
  KillScenario scenario;
  const std::vector<Val> plain = scenario.CleanX(4);
  auto armed = scenario.Run(4, /*victim=*/-1, 0, /*recovery=*/true);
  ASSERT_TRUE(armed.ok());
  EXPECT_TRUE(armed->status.ok());
  EXPECT_TRUE(BytesEqual(armed->x, plain));
  EXPECT_TRUE(armed->stats.failovers.empty());
  EXPECT_EQ(armed->stats.rows_reexecuted, 0u);
}

TEST(FleetStatsTest, MakespanExcludesFailedDevices) {
  // Recovery off, last device killed: the makespan/critical-device argmax
  // must come from the completed launches only (a failed launch has no cycle
  // count — the watchdog returns an error instead of stats).
  KillScenario scenario;
  auto result = scenario.Run(2, /*victim=*/1, 77, /*recovery=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  EXPECT_TRUE(result->stats.devices[0].status.ok());
  EXPECT_EQ(result->stats.critical_device, 0);
  EXPECT_EQ(result->stats.makespan_cycles, result->stats.devices[0].cycles);
  EXPECT_GT(result->stats.makespan_cycles, 0u);

  // Every launch failed: no device can be critical.
  auto all_dead = scenario.Run(2, /*victim=*/0, 77, /*recovery=*/false);
  ASSERT_TRUE(all_dead.ok());
  EXPECT_FALSE(all_dead->status.ok());
  EXPECT_EQ(all_dead->stats.critical_device, -1);
  EXPECT_EQ(all_dead->stats.makespan_cycles, 0u);
}

// --- Degraded-mode sharded serving (DeviceHealthTracker) --------------------

TEST(HealthTrackerTest, WindowModeTripsOnFailureRate) {
  DeviceHealthTracker tracker(1, {.threshold = 0, .window = 4, .rate = 0.5});
  // Alternating outcomes never reach 2 consecutive failures, but once the
  // window is full at a 50% failure rate the device must quarantine.
  tracker.Report(0, true);
  tracker.Report(0, false);
  tracker.Report(0, true);
  EXPECT_EQ(tracker.state(0), DeviceState::kHealthy);
  tracker.Report(0, false);  // window full: {F, ok, F, ok} -> 2/4 >= 0.5
  EXPECT_EQ(tracker.state(0), DeviceState::kQuarantined);
  EXPECT_EQ(tracker.snapshot().quarantines, 1u);
}

/// A 2-device shard with matrix "sick" poisoned on device 0: its solver
/// carries a drop-every-publish injector, so every device-path solve of it
/// deadlocks until the injector is healed.
struct DegradedShard {
  explicit DegradedShard(HealthOptions health) {
    sim::FaultPlan poison;
    poison.seed = 99;
    poison.drop_publish_rate = 1.0;
    injector.Reseed(poison);

    ShardOptions options;
    options.num_devices = 2;
    options.service = serve::SolveService::DeterministicOptions();
    options.health = health;
    shard = std::make_unique<ShardedSolveService>(options);

    SolverOptions poisoned = FastWatchdogOptions();
    poisoned.kernel_options.fault_injector = &injector;
    auto registered = shard->Register(matrix, "sick", poisoned);
    EXPECT_TRUE(registered.ok());
    handle = *registered;
    EXPECT_EQ(handle.device, 0);
  }

  static SolverOptions FastWatchdogOptions() {
    SolverOptions options = TinySolverOptions();
    options.device.no_progress_cycles = 30'000;
    return options;
  }

  void Heal() { injector.Reseed(sim::FaultPlan{}); }  // disabled plan

  serve::ServeResult Solve(std::uint64_t seed) {
    const ReferenceProblem problem = MakeReferenceProblem(matrix, seed);
    serve::RequestOptions request;
    request.algorithm = Algorithm::kCapellini;  // device path
    auto submitted = shard->Submit(handle, problem.b, request);
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    return submitted->get();
  }

  Csr matrix = MakeBanded({.rows = 160, .bandwidth = 3, .fill = 0.8});
  sim::FaultInjector injector;
  std::unique_ptr<ShardedSolveService> shard;
  ShardedHandle handle;
};

TEST(ShardHealthTest, QuarantineFailsOverToSurvivorAndProbesReQuarantine) {
  DegradedShard fixture({.threshold = 2, .probe_cooldown = 2});
  const Solver clean(fixture.matrix, DegradedShard::FastWatchdogOptions());

  // Two consecutive deadlocks quarantine device 0.
  EXPECT_EQ(fixture.Solve(0).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.Solve(1).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kQuarantined);

  // Deflected submits serve on the survivor (device 1) with the owner's
  // matrix re-registered MINUS the fault seam — the clean bytes, exactly.
  for (std::uint64_t seed = 2; seed < 4; ++seed) {
    const serve::ServeResult result = fixture.Solve(seed);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    const ReferenceProblem problem =
        MakeReferenceProblem(fixture.matrix, seed);
    auto expect = clean.Solve(Algorithm::kCapellini, problem.b);
    ASSERT_TRUE(expect.ok());
    EXPECT_TRUE(BytesEqual(result.solve.x, expect->x));
  }

  // Cooldown elapsed: the next submit is the half-open probe. It runs on the
  // still-poisoned owner, fails, and re-quarantines.
  EXPECT_EQ(fixture.Solve(4).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kQuarantined);

  const ShardHealthStats stats = fixture.shard->health_stats();
  EXPECT_EQ(stats.health.quarantines, 2u);  // initial trip + failed probe
  EXPECT_EQ(stats.health.probes, 1u);
  EXPECT_EQ(stats.health.probe_failures, 1u);
  EXPECT_EQ(stats.health.reinstatements, 0u);
  EXPECT_EQ(stats.failover_submits, 2u);
  EXPECT_EQ(stats.failover_registrations, 1u);  // cached after the first
  // The poisoned device completed zero OK requests; the survivor took them.
  EXPECT_EQ(fixture.shard->stats(0).totals().requests, 0u);
  EXPECT_EQ(fixture.shard->stats(1).totals().requests, 2u);
}

TEST(ShardHealthTest, SuccessfulProbeReinstatesDevice) {
  DegradedShard fixture({.threshold = 2, .probe_cooldown = 1});
  EXPECT_EQ(fixture.Solve(0).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.Solve(1).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kQuarantined);

  fixture.Heal();  // the device "comes back": faults stop firing
  EXPECT_TRUE(fixture.Solve(2).status.ok());  // deflected to the survivor
  // Cooldown of 1 elapsed: this submit probes the healed owner and succeeds.
  EXPECT_TRUE(fixture.Solve(3).status.ok());
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kHealthy);
  // Traffic routes home again.
  EXPECT_TRUE(fixture.Solve(4).status.ok());

  const ShardHealthStats stats = fixture.shard->health_stats();
  EXPECT_EQ(stats.health.reinstatements, 1u);
  EXPECT_EQ(stats.health.probe_failures, 0u);
  EXPECT_EQ(fixture.shard->stats(0).totals().requests, 2u);  // probe + home
}

TEST(ShardHealthTest, ExactlyOnceAccountingUnderQuarantine) {
  DegradedShard fixture({.threshold = 2, .probe_cooldown = 3});
  const int submits = 12;
  for (int i = 0; i < submits; ++i) {
    fixture.Solve(static_cast<std::uint64_t>(i));
  }
  // PR-4 invariant, fleet-wide: every submit lands in exactly one terminal
  // bucket on exactly one device; failover routing must not double-count.
  std::uint64_t ok = 0;
  std::uint64_t failures = 0;
  std::uint64_t rejections = 0;
  std::uint64_t misses = 0;
  for (int d = 0; d < 2; ++d) {
    const serve::ServiceStats::Totals totals =
        fixture.shard->stats(d).totals();
    ok += totals.requests;
    failures += totals.failures;
    rejections += totals.rejections;
    misses += totals.deadline_misses;
  }
  EXPECT_EQ(ok + failures + rejections + misses,
            static_cast<std::uint64_t>(submits));
  EXPECT_EQ(rejections, 0u);
  EXPECT_EQ(misses, 0u);
  const ShardHealthStats stats = fixture.shard->health_stats();
  EXPECT_EQ(stats.failover_submits, stats.health.deflections);
  EXPECT_EQ(ok, static_cast<std::uint64_t>(submits) - failures);
}

TEST(ShardHealthTest, AllDevicesQuarantinedRejectsSubmit) {
  sim::FaultPlan poison;
  poison.seed = 7;
  poison.drop_publish_rate = 1.0;
  sim::FaultInjector injector;
  injector.Reseed(poison);

  ShardOptions options;
  options.num_devices = 1;
  options.service = serve::SolveService::DeterministicOptions();
  options.health = {.threshold = 1, .probe_cooldown = 100};
  ShardedSolveService shard(options);
  SolverOptions poisoned = DegradedShard::FastWatchdogOptions();
  poisoned.kernel_options.fault_injector = &injector;
  const Csr matrix = MakeBanded({.rows = 160, .bandwidth = 3, .fill = 0.8});
  auto handle = shard.Register(matrix, "sick", poisoned);
  ASSERT_TRUE(handle.ok());

  serve::RequestOptions request;
  request.algorithm = Algorithm::kCapellini;
  auto first =
      shard.Submit(*handle, MakeReferenceProblem(matrix, 0).b, request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->get().status.code(), StatusCode::kDeadlock);
  // One failure quarantined the only device: nowhere to fail over to.
  auto deflected =
      shard.Submit(*handle, MakeReferenceProblem(matrix, 1).b, request);
  EXPECT_FALSE(deflected.ok());
  EXPECT_EQ(deflected.status().code(), StatusCode::kResourceExhausted);
}

TEST(HealthTrackerTest, LostProbeTimesOutViaDeflections) {
  // A probe whose outcome never arrives (expired deadline, per-handle
  // breaker deflection — paths that skip the outcome listener) must not
  // strand the device in kProbing forever: after probe_timeout deflections
  // the probe is declared lost and the device re-enters quarantine with a
  // fresh cooldown, so probing eventually resumes.
  DeviceHealthTracker tracker(
      1, {.threshold = 1, .probe_cooldown = 0, .probe_timeout = 3});
  tracker.Report(0, true);
  EXPECT_EQ(tracker.state(0), DeviceState::kQuarantined);
  EXPECT_EQ(tracker.AdmitFor(0), DeviceHealthTracker::Admit::kProbe);
  EXPECT_EQ(tracker.state(0), DeviceState::kProbing);
  // The probe's outcome is lost; deflections accumulate toward the timeout.
  EXPECT_EQ(tracker.AdmitFor(0), DeviceHealthTracker::Admit::kDeflect);
  EXPECT_EQ(tracker.AdmitFor(0), DeviceHealthTracker::Admit::kDeflect);
  EXPECT_EQ(tracker.AdmitFor(0), DeviceHealthTracker::Admit::kDeflect);
  EXPECT_EQ(tracker.state(0), DeviceState::kQuarantined);
  EXPECT_EQ(tracker.snapshot().probe_aborts, 1u);
  // Fresh cooldown (0): the device probes again and can still reinstate.
  EXPECT_EQ(tracker.AdmitFor(0), DeviceHealthTracker::Admit::kProbe);
  tracker.Report(0, false);
  EXPECT_EQ(tracker.state(0), DeviceState::kHealthy);
  EXPECT_EQ(tracker.snapshot().reinstatements, 1u);
}

TEST(ShardHealthTest, FailedProbeSubmitAbortsBackToQuarantine) {
  DegradedShard fixture({.threshold = 2, .probe_cooldown = 1});
  EXPECT_EQ(fixture.Solve(0).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.Solve(1).status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kQuarantined);

  // Kill the owner's service: the next due probe fails ADMISSION, so its
  // outcome can never arrive through the listener. The probe must abort back
  // to kQuarantined instead of sticking in kProbing (which would deflect
  // every future submit and never probe again).
  fixture.shard->service(0).Shutdown();
  EXPECT_TRUE(fixture.Solve(2).status.ok());  // deflected to the survivor
  serve::RequestOptions request;
  request.algorithm = Algorithm::kCapellini;
  auto probe = fixture.shard->Submit(
      fixture.handle, MakeReferenceProblem(fixture.matrix, 3).b, request);
  EXPECT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fixture.shard->health().state(0), DeviceState::kQuarantined);
  EXPECT_EQ(fixture.shard->health_stats().health.probe_aborts, 1u);
  // Deflected traffic keeps serving on the survivor.
  EXPECT_TRUE(fixture.Solve(4).status.ok());
}

TEST(ShardHealthTest, RetargetedFailoverEvictsStaleSurvivorCopy) {
  sim::FaultPlan poison;
  poison.seed = 99;
  poison.drop_publish_rate = 1.0;
  sim::FaultInjector injector0;
  sim::FaultInjector injector1;
  injector0.Reseed(poison);
  injector1.Reseed(poison);

  ShardOptions options;
  options.num_devices = 3;
  options.service = serve::SolveService::DeterministicOptions();
  options.health = {.threshold = 1, .probe_cooldown = 100};
  ShardedSolveService shard(options);

  const Csr matrix = MakeBanded({.rows = 160, .bandwidth = 3, .fill = 0.8});
  SolverOptions sick0 = DegradedShard::FastWatchdogOptions();
  sick0.kernel_options.fault_injector = &injector0;
  auto h0 = shard.Register(matrix, "sick0", sick0);
  ASSERT_TRUE(h0.ok());
  ASSERT_EQ(h0->device, 0);
  SolverOptions sick1 = DegradedShard::FastWatchdogOptions();
  sick1.kernel_options.fault_injector = &injector1;
  auto h1 = shard.Register(matrix, "sick1", sick1);
  ASSERT_TRUE(h1.ok());
  ASSERT_EQ(h1->device, 1);

  serve::RequestOptions request;
  request.algorithm = Algorithm::kCapellini;
  auto solve = [&](const ShardedHandle& handle, std::uint64_t seed) {
    auto submitted =
        shard.Submit(handle, MakeReferenceProblem(matrix, seed).b, request);
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    return submitted->get();
  };

  // threshold 1: one deadlock quarantines device 0, and h0 fails over to
  // device 1 (the lowest-indexed healthy survivor).
  EXPECT_EQ(solve(*h0, 0).status.code(), StatusCode::kDeadlock);
  EXPECT_TRUE(solve(*h0, 1).status.ok());
  EXPECT_EQ(shard.registry(1).Snapshot().resident_entries, 2u);

  // Device 1 dies too: the next deflected submit for h0 retargets to device
  // 2 and must EVICT the superseded copy from device 1, so its byte budget
  // and placement score stop charging for a copy that will never serve.
  EXPECT_EQ(solve(*h1, 2).status.code(), StatusCode::kDeadlock);
  EXPECT_TRUE(solve(*h0, 3).status.ok());
  EXPECT_EQ(shard.registry(1).Snapshot().resident_entries, 1u);  // sick1 only
  EXPECT_EQ(shard.registry(2).Snapshot().resident_entries, 1u);  // fresh copy
  const ShardHealthStats stats = shard.health_stats();
  EXPECT_EQ(stats.failover_registrations, 2u);
  // The retargeted copy is cached: another deflected submit re-registers
  // nothing.
  EXPECT_TRUE(solve(*h0, 4).status.ok());
  EXPECT_EQ(shard.health_stats().failover_registrations, 2u);
}

}  // namespace
}  // namespace fleet
}  // namespace capellini
