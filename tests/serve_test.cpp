// Tests for the serving layer: registry LRU + byte budget, shared analysis
// under concurrent readers, admission control, coalesced (batched) solves,
// deadlines, and the determinism-mode byte-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/solver.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "sim/fault.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "serve/registry.h"
#include "serve/replay.h"
#include "serve/service.h"

namespace capellini::serve {
namespace {

Csr TestMatrix(std::uint64_t seed, Idx components_per_level = 150) {
  return MakeLevelStructured({.num_levels = 6,
                              .components_per_level = components_per_level,
                              .avg_nnz_per_row = 3.0,
                              .size_jitter = 0.2,
                              .interleave = false,
                              .seed = seed});
}

SolverOptions TinyOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  return options;
}

std::size_t EntryBytes(const Csr& matrix) {
  MatrixRegistry probe;
  auto handle = probe.Register(matrix, "probe", TinyOptions());
  return (*probe.Acquire(*handle))->bytes;
}

TEST(RegistryTest, RegisterAcquireSolve) {
  MatrixRegistry registry;
  const Csr matrix = TestMatrix(31);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 32);
  auto handle = registry.Register(matrix, "m31", TinyOptions());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->name, "m31");
  EXPECT_GT((*entry)->bytes, 0u);
  EXPECT_TRUE((*entry)->solver.analyzed());  // memoized at registration

  auto result = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);

  const RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.registrations, 1u);
  EXPECT_EQ(snapshot.hits, 1u);  // the one Acquire above
  EXPECT_EQ(snapshot.resident_bytes, (*entry)->bytes);
}

TEST(RegistryTest, RejectsNonLowerTriangularWithStatusNotAbort) {
  MatrixRegistry registry;
  const Csr upper = TransposeCsr(TestMatrix(33));
  auto handle = registry.Register(upper, "upper", TinyOptions());
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, LruEvictionAndReRegistration) {
  const Csr a = TestMatrix(41);
  const Csr b = TestMatrix(42);
  const std::size_t bytes = EntryBytes(a);

  // Budget fits roughly one matrix: registering B evicts A (the LRU).
  MatrixRegistry registry(RegistryOptions{.byte_budget = bytes * 3 / 2});
  auto ha = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(ha.ok());
  auto hb = registry.Register(b, "b", TinyOptions());
  ASSERT_TRUE(hb.ok());

  EXPECT_FALSE(registry.Contains(*ha));
  EXPECT_TRUE(registry.Contains(*hb));
  auto miss = registry.Acquire(*ha);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Snapshot().evictions, 1u);
  EXPECT_EQ(registry.Snapshot().misses, 1u);

  // Re-registration gets a fresh handle and solves correctly.
  auto ha2 = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(ha2.ok());
  EXPECT_NE(*ha2, *ha);
  EXPECT_FALSE(registry.Contains(*hb));  // b became the LRU victim
  const ReferenceProblem problem = MakeReferenceProblem(a, 43);
  auto result =
      (*registry.Acquire(*ha2))->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
}

TEST(RegistryTest, OversizedMatrixRejectedWithResourceExhausted) {
  const Csr a = TestMatrix(44);
  MatrixRegistry registry(RegistryOptions{.byte_budget = EntryBytes(a) / 2});
  auto handle = registry.Register(a, "too-big", TinyOptions());
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
}

TEST(RegistryTest, EvictionKeepsInFlightReferencesAlive) {
  MatrixRegistry registry;
  const Csr a = TestMatrix(45);
  auto handle = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(handle.ok());
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());

  EXPECT_TRUE(registry.Evict(*handle));
  EXPECT_FALSE(registry.Contains(*handle));

  // The held shared_ptr still backs a correct solve.
  const ReferenceProblem problem = MakeReferenceProblem(a, 46);
  auto result = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
}

TEST(SolverTest, AnalysisIsSharedAndSafeUnderConcurrentReaders) {
  const Solver solver(TestMatrix(51), TinyOptions());
  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  std::vector<const Analysis*> seen(kReaders, nullptr);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&solver, &seen, i] {
      seen[static_cast<std::size_t>(i)] = &solver.analysis();
    });
  }
  for (std::thread& t : readers) t.join();
  for (const Analysis* a : seen) {
    EXPECT_EQ(a, seen[0]);  // computed once, shared by every reader
  }
  EXPECT_TRUE(solver.analyzed());
  EXPECT_EQ(&solver.Stats(), &solver.analysis().stats);
  EXPECT_EQ(&solver.Levels(), &solver.analysis().levels);
}

TEST(ServiceTest, ServesRequestsAndVerifies) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(61), "m61", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry, ServiceOptions{.workers = 2});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  std::vector<std::future<ServeResult>> futures;
  std::vector<ReferenceProblem> problems;
  for (int i = 0; i < 6; ++i) {
    problems.push_back(
        MakeReferenceProblem(matrix, 62 + static_cast<std::uint64_t>(i)));
    auto submitted = service.Submit(*handle, problems.back().b);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_LE(MaxRelativeError(result.solve.x, problems[i].x_true), 1e-10);
    EXPECT_GE(result.batch_size, 1);
  }
  service.Shutdown();
  EXPECT_EQ(service.stats().totals().requests, 6u);
}

TEST(ServiceTest, CoalescesSameHandleRequestsIntoOneLaunch) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(63), "m63", TinyOptions());
  ASSERT_TRUE(handle.ok());

  // Paused workers make coalescing deterministic: 5 queued requests with
  // max_batch=4 must group as {4, 1}.
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 4,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;
  std::vector<std::future<ServeResult>> futures;
  std::vector<ReferenceProblem> problems;
  for (int i = 0; i < 5; ++i) {
    problems.push_back(
        MakeReferenceProblem(matrix, 70 + static_cast<std::uint64_t>(i)));
    auto submitted = service.Submit(*handle, problems.back().b, capellini);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  int batched = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_LE(MaxRelativeError(result.solve.x, problems[i].x_true), 1e-10);
    if (result.batch_size == 4) ++batched;
  }
  EXPECT_EQ(batched, 4);
  service.Shutdown();
  const std::vector<std::uint64_t> occupancy = service.stats().BatchOccupancy();
  ASSERT_EQ(occupancy.size(), 4u);
  EXPECT_EQ(occupancy[0], 1u);  // the leftover solo
  EXPECT_EQ(occupancy[3], 1u);  // the coalesced four
}

TEST(ServiceTest, BatchesUpperSystemSolvesThroughReversedRegistration) {
  // The backward-substitution half of a direct solve, served: register the
  // index-reversed upper system once, batch k upper solves, un-reverse and
  // compare against the serial host solutions.
  const Csr lower = TestMatrix(81);
  const Csr upper = TransposeCsr(lower);
  ASSERT_TRUE(IsUpperTriangularWithDiagonal(upper));
  const auto n = static_cast<std::size_t>(upper.rows());

  MatrixRegistry registry;
  auto handle =
      registry.Register(ReverseSystem(upper), "upper-reversed", TinyOptions());
  ASSERT_TRUE(handle.ok());

  constexpr int kRhs = 4;
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = kRhs,
                                      .start_paused = true});
  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;

  std::vector<std::vector<Val>> bs(kRhs);
  std::vector<std::future<ServeResult>> futures;
  Rng rng(82);
  for (int r = 0; r < kRhs; ++r) {
    bs[static_cast<std::size_t>(r)].resize(n);
    for (Val& v : bs[static_cast<std::size_t>(r)]) {
      v = rng.NextDouble(0.5, 1.5);
    }
    std::vector<Val> b_reversed(n);
    ReverseVector(bs[static_cast<std::size_t>(r)], b_reversed);
    auto submitted = service.Submit(*handle, std::move(b_reversed), capellini);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  for (int r = 0; r < kRhs; ++r) {
    ServeResult result = futures[static_cast<std::size_t>(r)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.batch_size, kRhs);  // one launch served all k
    std::vector<Val> x(n);
    ReverseVector(result.solve.x, x);

    auto serial = SolveUpperSystem(upper, bs[static_cast<std::size_t>(r)],
                                   Algorithm::kSerialCpu, TinyOptions());
    ASSERT_TRUE(serial.ok());
    EXPECT_LE(MaxRelativeError(x, serial->x), 1e-10);
  }
}

TEST(ServiceTest, QueueFullSubmissionsReturnStatusNoAbort) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(91), "m91", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_queue = 1,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 92);

  auto accepted = service.Submit(*handle, problem.b);
  ASSERT_TRUE(accepted.ok());
  auto rejected = service.Submit(*handle, problem.b);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().totals().rejections, 1u);

  service.Start();
  ServeResult result = accepted->get();
  EXPECT_TRUE(result.status.ok());
}

TEST(ServiceTest, SubmitValidatesHandleAndLength) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(93), "m93", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());

  auto unknown = service.Submit(*handle + 17, std::vector<Val>(10, 1.0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto short_b = service.Submit(*handle, std::vector<Val>(3, 1.0));
  ASSERT_FALSE(short_b.ok());
  EXPECT_EQ(short_b.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, ExpiredRequestsGetDeadlineExceeded) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(94), "m94", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1, .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 95);
  RequestOptions tight;
  tight.deadline_ms = 0.01;
  auto submitted = service.Submit(*handle, problem.b, tight);
  ASSERT_TRUE(submitted.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();
  ServeResult result = submitted->get();
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().totals().deadline_misses, 1u);
}

TEST(ServiceTest, SubmitAfterShutdownFailsCleanly) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(96), "m96", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());
  service.Shutdown();
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  auto submitted =
      service.Submit(*handle, MakeReferenceProblem(matrix, 97).b);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, DeterminismModeByteReproducesSerialOneShotPath) {
  // Two matrices, a zipf trace, and the determinism contract: the service at
  // workers=1 / max_batch=1 must produce the exact bytes of a serial loop of
  // one-shot Solver::Solve calls.
  std::vector<Csr> corpus = {TestMatrix(101), TestMatrix(102, 100)};
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    auto handle = registry.Register(corpus[i], "m" + std::to_string(i),
                                    TinyOptions());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  const RequestTrace trace = GenerateZipfTrace(16, 2, 1.1, 103);

  // Serial one-shot baseline: a fresh Solver per request, exactly what a
  // caller without the serving layer would run.
  std::uint64_t serial_checksum = kFnvSeed;
  for (const TraceRequest& request : trace.requests) {
    const Csr& matrix = corpus[static_cast<std::size_t>(request.matrix)];
    const Solver solver(matrix, TinyOptions());
    const ReferenceProblem problem =
        MakeReferenceProblem(matrix, request.seed);
    auto result = solver.Solve(solver.Recommend(), problem.b);
    ASSERT_TRUE(result.ok());
    serial_checksum = HashBytes(serial_checksum, result->x.data(),
                                result->x.size() * sizeof(Val));
  }

  SolveService service(&registry, SolveService::DeterministicOptions());
  auto report = ReplayTrace(service, handles, trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->completed, trace.requests.size());
  EXPECT_EQ(report->wrong, 0u);
  EXPECT_EQ(report->solution_checksum, serial_checksum);
}

TEST(RegistryTest, CostModelSeedsFromAnalysisAndLearnsOnline) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(47), "m47", TinyOptions());
  ASSERT_TRUE(handle.ok());
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());

  // Seeded from the analysis before any solve runs.
  EXPECT_EQ((*entry)->cost.samples(), 0u);
  EXPECT_GT((*entry)->cost.EstimateMs(), 0.0);
  EXPECT_DOUBLE_EQ((*entry)->cost.EstimateMs(), (*entry)->solver.CostHintMs());

  // First observation replaces the seed; later ones blend (alpha = 0.25).
  (*entry)->cost.Observe(2.0);
  EXPECT_DOUBLE_EQ((*entry)->cost.EstimateMs(), 2.0);
  (*entry)->cost.Observe(4.0);
  EXPECT_DOUBLE_EQ((*entry)->cost.EstimateMs(), 2.5);
  EXPECT_EQ((*entry)->cost.samples(), 2u);
}

TEST(ServiceTest, ServingARequestFeedsTheCostModel) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(48), "m48", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  auto submitted = service.Submit(*handle, MakeReferenceProblem(matrix, 49).b);
  ASSERT_TRUE(submitted.ok());
  ServeResult result = submitted->get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.est_cost_ms, 0.0);
  auto entry = registry.Acquire(*handle);
  EXPECT_EQ((*entry)->cost.samples(), 1u);
  EXPECT_DOUBLE_EQ((*entry)->cost.EstimateMs(), result.solve.solve_ms);
  service.Shutdown();
  EXPECT_EQ(service.QueuedCostMs(), 0.0);
}

TEST(ServiceTest, EdfServesTightestDeadlineFirstStableOnTies) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(111), "m111", TinyOptions());
  ASSERT_TRUE(handle.ok());

  // Paused single worker, no coalescing: dequeue_seq is the serve order.
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 1,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const auto submit = [&](std::optional<double> deadline_ms) {
    RequestOptions options;
    options.deadline_ms = deadline_ms;
    auto submitted = service.Submit(
        *handle, MakeReferenceProblem(matrix, 112).b, options);
    EXPECT_TRUE(submitted.ok());
    return std::move(*submitted);
  };
  // Arrival order: A (none), B (5 s), C (1 s), D (5 s, ties with B).
  auto a = submit(std::nullopt);
  auto b = submit(5000.0);
  auto c = submit(1000.0);
  auto d = submit(5000.0);
  service.Start();

  // EDF order: C, then B before D (stable tie on arrival), then A.
  EXPECT_EQ(c.get().dequeue_seq, 0u);
  EXPECT_EQ(b.get().dequeue_seq, 1u);
  EXPECT_EQ(d.get().dequeue_seq, 2u);
  EXPECT_EQ(a.get().dequeue_seq, 3u);
  service.Shutdown();
  // B, C, D each landed ahead of already-queued work.
  EXPECT_EQ(service.stats().totals().reorders, 3u);
  EXPECT_EQ(service.stats().totals().deadline_misses, 0u);
}

TEST(ServiceTest, FifoPolicyIgnoresDeadlineOrder) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(113), "m113", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 1,
                                      .policy = QueuePolicy::kFifo,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  RequestOptions tight;
  tight.deadline_ms = 1000.0;
  auto first = service.Submit(*handle, MakeReferenceProblem(matrix, 114).b);
  auto second =
      service.Submit(*handle, MakeReferenceProblem(matrix, 115).b, tight);
  ASSERT_TRUE(first.ok() && second.ok());
  service.Start();
  EXPECT_EQ(first->get().dequeue_seq, 0u);  // arrival order, not deadline
  EXPECT_EQ(second->get().dequeue_seq, 1u);
  service.Shutdown();
  EXPECT_EQ(service.stats().totals().reorders, 0u);
}

TEST(ServiceTest, CoalescingRespectsTheDeadlineCompatibilityWindow) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(116), "m116", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 4,
                                      .coalesce_window_ms = 10.0,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;
  const auto submit = [&](double deadline_ms) {
    RequestOptions options = capellini;
    options.deadline_ms = deadline_ms;
    auto submitted = service.Submit(
        *handle, MakeReferenceProblem(matrix, 117).b, options);
    EXPECT_TRUE(submitted.ok());
    return std::move(*submitted);
  };
  auto leader = submit(5000.0);
  auto outside = submit(5012.0);  // 12 ms after the leader: beyond the window
  auto inside = submit(5001.0);   // 1 ms after: joins the leader's launch
  service.Start();

  ServeResult leader_result = leader.get();
  ServeResult inside_result = inside.get();
  ServeResult outside_result = outside.get();
  EXPECT_EQ(leader_result.batch_size, 2);
  EXPECT_EQ(inside_result.batch_size, 2);
  EXPECT_EQ(inside_result.dequeue_seq, leader_result.dequeue_seq);
  EXPECT_EQ(outside_result.batch_size, 1);
  EXPECT_GT(outside_result.dequeue_seq, leader_result.dequeue_seq);
  service.Shutdown();
}

TEST(ServiceTest, CostAdmissionRejectsWithRetryAfterHint) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(121), "m121", TinyOptions());
  ASSERT_TRUE(handle.ok());

  // Budget far below one request's estimate: the empty-queue exemption
  // admits the first request, the cost bound rejects the second.
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_queue_cost_ms = 1e-3,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 122);

  auto accepted = service.Submit(*handle, problem.b);
  ASSERT_TRUE(accepted.ok());
  EXPECT_GT(service.QueuedCostMs(), 0.0);

  auto rejected = service.Submit(*handle, problem.b);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("retry after"),
            std::string::npos);
  EXPECT_EQ(service.stats().totals().rejections, 1u);

  service.Start();
  EXPECT_TRUE(accepted->get().status.ok());
  service.Shutdown();
  EXPECT_EQ(service.QueuedCostMs(), 0.0);
}

TEST(ServiceTest, EveryTerminalOutcomeHitsStatsExactlyOnce) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(123), "m123", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_queue = 2,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 124);

  std::size_t submitted = 0;
  RequestOptions tight;
  tight.deadline_ms = 0.01;
  auto ok_request = service.Submit(*handle, problem.b);
  ++submitted;
  auto expired_request = service.Submit(*handle, problem.b, tight);
  ++submitted;
  auto queue_full = service.Submit(*handle, problem.b);
  ++submitted;
  ASSERT_TRUE(ok_request.ok());
  ASSERT_TRUE(expired_request.ok());
  ASSERT_FALSE(queue_full.ok());
  EXPECT_EQ(queue_full.status().code(), StatusCode::kResourceExhausted);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();
  EXPECT_TRUE(ok_request->get().status.ok());
  EXPECT_EQ(expired_request->get().status.code(),
            StatusCode::kDeadlineExceeded);
  service.Shutdown();

  auto after_shutdown = service.Submit(*handle, problem.b);
  ++submitted;
  ASSERT_FALSE(after_shutdown.ok());
  EXPECT_EQ(after_shutdown.status().code(), StatusCode::kFailedPrecondition);

  // The accounting invariant: every submission lands in exactly one bucket.
  const ServiceStats::Totals totals = service.stats().totals();
  EXPECT_EQ(totals.requests, 1u);
  EXPECT_EQ(totals.failures, 0u);
  EXPECT_EQ(totals.deadline_misses, 1u);
  EXPECT_EQ(totals.rejections, 2u);  // queue full + after shutdown
  EXPECT_EQ(totals.requests + totals.failures + totals.deadline_misses +
                totals.rejections,
            submitted);

  // The expired request's 0.01 ms budget fell in the tightest bucket.
  const auto buckets = service.stats().DeadlineBuckets();
  EXPECT_EQ(buckets[0].total, 1u);
  EXPECT_EQ(buckets[0].missed, 1u);
}

/// A chain matrix on a tight watchdog: kCapelliniNaive deadlocks on it
/// (§3.3 Challenge 1), kCapellini solves it — the breaker's failure and
/// recovery probes in one registry entry.
SolverOptions WatchdogOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.device.no_progress_cycles = 30'000;
  return options;
}

TEST(ServiceTest, WatchdogOpensBreakerAndProbeClosesIt) {
  MatrixRegistry registry;
  auto handle =
      registry.Register(MakeBidiagonal(64), "chain", WatchdogOptions());
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.start_paused = true;
  options.breaker_threshold = 2;
  options.breaker_cooldown = 2;
  SolveService service(&registry, options);

  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  RequestOptions naive;
  naive.algorithm = Algorithm::kCapelliniNaive;
  RequestOptions good;
  good.algorithm = Algorithm::kCapellini;

  // FIFO processing order (deadline-free EDF): two watchdog trips open the
  // breaker, two requests deflect while it cools down, the fifth is the
  // half-open probe that closes it, the sixth flows normally.
  std::vector<std::future<ServeResult>> futures;
  for (const RequestOptions* request_options :
       {&naive, &naive, &good, &good, &good, &good}) {
    auto submitted = service.Submit(*handle, problem.b, *request_options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  EXPECT_EQ(futures[0].get().status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(futures[1].get().status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(futures[2].get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(futures[3].get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(futures[4].get().status.ok());  // the probe
  EXPECT_TRUE(futures[5].get().status.ok());  // breaker closed again
  service.Shutdown();

  const ServiceStats::Totals totals = service.stats().totals();
  EXPECT_EQ(totals.breaker_opens, 1u);
  EXPECT_EQ(totals.breaker_probes, 1u);
  EXPECT_EQ(totals.breaker_short_circuits, 2u);
  // Failure split by reason, and the exactly-once invariant still holds.
  EXPECT_EQ(totals.requests, 2u);
  EXPECT_EQ(totals.failures, 4u);
  EXPECT_EQ(totals.failures_deadlock, 2u);
  EXPECT_EQ(totals.failures_verify, 0u);
  EXPECT_EQ(totals.failures_other, 2u);  // the two fast-fail deflections
  EXPECT_EQ(totals.failures,
            totals.failures_deadlock + totals.failures_verify +
                totals.failures_other);
  EXPECT_EQ(totals.requests + totals.failures + totals.deadline_misses +
                totals.rejections,
            6u);
}

TEST(ServiceTest, OpenBreakerHostFallbackStillServes) {
  MatrixRegistry registry;
  auto handle =
      registry.Register(MakeBidiagonal(64), "chain", WatchdogOptions());
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.start_paused = true;
  options.breaker_threshold = 1;
  options.breaker_cooldown = 4;
  options.breaker_mode = BreakerMode::kHostFallback;
  SolveService service(&registry, options);

  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 9);
  RequestOptions naive;
  naive.algorithm = Algorithm::kCapelliniNaive;
  auto tripping = service.Submit(*handle, problem.b, naive);
  RequestOptions good;
  good.algorithm = Algorithm::kCapellini;
  auto deflected = service.Submit(*handle, problem.b, good);
  ASSERT_TRUE(tripping.ok());
  ASSERT_TRUE(deflected.ok());
  service.Start();

  EXPECT_EQ(tripping->get().status.code(), StatusCode::kDeadlock);
  // While open, the request is rerouted to the fault-immune host solver
  // instead of fast-failing: degraded service beats no service.
  ServeResult result = deflected->get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.algorithm, Algorithm::kSerialCpu);
  EXPECT_LE(MaxRelativeError(result.solve.x, problem.x_true), 1e-10);
  service.Shutdown();
  EXPECT_EQ(service.stats().totals().breaker_short_circuits, 1u);
}

TEST(ServiceTest, WindowBreakerOpensOnFailureRate) {
  // Intermittent faults: failures alternate with successes, so no
  // consecutive streak ever forms — only the sliding-window RATE mode can
  // catch this pattern.
  MatrixRegistry registry;
  auto handle =
      registry.Register(MakeBidiagonal(64), "chain", WatchdogOptions());
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.start_paused = true;
  options.breaker_threshold = 0;  // consecutive mode OFF — window only
  options.breaker_window = 4;
  options.breaker_rate = 0.5;
  options.breaker_cooldown = 2;
  SolveService service(&registry, options);

  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  RequestOptions naive;
  naive.algorithm = Algorithm::kCapelliniNaive;
  RequestOptions good;
  good.algorithm = Algorithm::kCapellini;

  // F,S,F,S fills the window at 2/4 = rate 0.5 -> open; two deflect during
  // cooldown; the probe closes it; the last flows normally.
  std::vector<std::future<ServeResult>> futures;
  for (const RequestOptions* request_options :
       {&naive, &good, &naive, &good, &good, &good, &good, &good}) {
    auto submitted = service.Submit(*handle, problem.b, *request_options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  EXPECT_EQ(futures[0].get().status.code(), StatusCode::kDeadlock);
  EXPECT_TRUE(futures[1].get().status.ok());
  EXPECT_EQ(futures[2].get().status.code(), StatusCode::kDeadlock);
  EXPECT_TRUE(futures[3].get().status.ok());  // fills the window -> open
  EXPECT_EQ(futures[4].get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(futures[5].get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(futures[6].get().status.ok());  // the probe
  EXPECT_TRUE(futures[7].get().status.ok());  // closed again
  service.Shutdown();

  const ServiceStats::Totals totals = service.stats().totals();
  EXPECT_EQ(totals.breaker_opens, 1u);
  EXPECT_EQ(totals.breaker_probes, 1u);
  EXPECT_EQ(totals.breaker_short_circuits, 2u);
}

TEST(ServiceTest, WindowBreakerPartialWindowNeverTrips) {
  // Below-rate failure mix, and a window that never fills: the breaker must
  // stay closed — every request is served, failures stay in-band.
  MatrixRegistry registry;
  auto handle =
      registry.Register(MakeBidiagonal(64), "chain", WatchdogOptions());
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.start_paused = true;
  options.breaker_window = 8;  // 6 requests below never fill it
  options.breaker_rate = 0.5;
  SolveService service(&registry, options);

  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  RequestOptions naive;
  naive.algorithm = Algorithm::kCapelliniNaive;
  RequestOptions good;
  good.algorithm = Algorithm::kCapellini;

  std::vector<std::future<ServeResult>> futures;
  for (const RequestOptions* request_options :
       {&naive, &good, &naive, &good, &naive, &good}) {
    auto submitted = service.Submit(*handle, problem.b, *request_options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const StatusCode code = futures[i].get().status.code();
    EXPECT_EQ(code, i % 2 == 0 ? StatusCode::kDeadlock : StatusCode::kOk)
        << "request " << i;
  }
  service.Shutdown();
  EXPECT_EQ(service.stats().totals().breaker_opens, 0u);
  EXPECT_EQ(service.stats().totals().breaker_short_circuits, 0u);
}

TEST(ServiceTest, ReliableModeRecoversAnInjectedFault) {
  // The injector must outlive the registry entry that points at it.
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;  // the first flag publish vanishes, then silence
  sim::FaultInjector injector(plan);
  SolverOptions faulty = WatchdogOptions();
  faulty.kernel_options.fault_injector = &injector;

  MatrixRegistry registry;
  auto handle = registry.Register(MakeBidiagonal(64), "faulty", faulty);
  ASSERT_TRUE(handle.ok());

  ServiceOptions options = SolveService::DeterministicOptions();
  options.reliable = true;
  SolveService service(&registry, options);

  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 11);
  RequestOptions good;
  good.algorithm = Algorithm::kCapellini;
  auto submitted = service.Submit(*handle, problem.b, good);
  ASSERT_TRUE(submitted.ok());
  ServeResult result = submitted->get();

  // The raw launch deadlocked on the dropped flag; the retry ladder
  // escalated past it and the caller sees a verified success.
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.verified);
  EXPECT_GE(result.attempts, 2);
  EXPECT_NE(result.algorithm, Algorithm::kCapellini);
  EXPECT_LE(MaxRelativeError(result.solve.x, problem.x_true), 1e-10);
  service.Shutdown();
  const ServiceStats::Totals totals = service.stats().totals();
  EXPECT_EQ(totals.requests, 1u);
  EXPECT_EQ(totals.failures, 0u);  // recovery means no terminal failure
}

TEST(ServiceTest, CostAwareLadderSkipsFastRungsForExpensiveHandles) {
  // Same injected fault (first flag publish dropped -> kCapellini deadlocks),
  // two handles on opposite sides of ladder_cost_threshold_ms. The cheap
  // handle must recover on the ladder's first fast rung
  // (kCapelliniTwoPhase); the expensive handle must skip the fast rungs and
  // land directly on kLevelSet.
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;
  sim::FaultInjector cheap_injector(plan);
  sim::FaultInjector expensive_injector(plan);
  SolverOptions cheap_solver = WatchdogOptions();
  cheap_solver.kernel_options.fault_injector = &cheap_injector;
  SolverOptions expensive_solver = WatchdogOptions();
  expensive_solver.kernel_options.fault_injector = &expensive_injector;

  MatrixRegistry registry;
  auto cheap = registry.Register(MakeBidiagonal(64), "cheap", cheap_solver);
  auto expensive =
      registry.Register(MakeBidiagonal(4096), "expensive", expensive_solver);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(expensive.ok());

  // Split the threshold between the two handles' analysis-seeded estimates.
  const double cheap_est = (*registry.Acquire(*cheap))->cost.EstimateMs();
  const double expensive_est =
      (*registry.Acquire(*expensive))->cost.EstimateMs();
  ASSERT_LT(cheap_est, expensive_est);

  ServiceOptions options = SolveService::DeterministicOptions();
  options.reliable = true;
  options.ladder_cost_threshold_ms = expensive_est;  // "at or above" escalates
  SolveService service(&registry, options);

  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;
  for (const auto& [handle, expected_recovery] :
       {std::pair{*cheap, Algorithm::kCapelliniTwoPhase},
        std::pair{*expensive, Algorithm::kLevelSet}}) {
    const Csr& matrix = (*registry.Acquire(handle))->solver.matrix();
    const ReferenceProblem problem = MakeReferenceProblem(matrix, 17);
    auto submitted = service.Submit(handle, problem.b, capellini);
    ASSERT_TRUE(submitted.ok());
    ServeResult result = submitted->get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.verified);
    EXPECT_GE(result.attempts, 2);
    EXPECT_EQ(result.algorithm, expected_recovery);
    EXPECT_LE(MaxRelativeError(result.solve.x, problem.x_true), 1e-10);
  }
  service.Shutdown();
}

TEST(ServiceTest, RejectedSubmissionsDoNotPromoteLruOrCountHits) {
  const Csr a = TestMatrix(131);
  const Csr b = TestMatrix(132);
  const Csr c = TestMatrix(133);
  const std::size_t bytes = EntryBytes(a);

  // Budget holds two matrices; registering a third evicts the true LRU.
  MatrixRegistry registry(RegistryOptions{.byte_budget = bytes * 5 / 2});
  auto ha = registry.Register(a, "a", TinyOptions());
  auto hb = registry.Register(b, "b", TinyOptions());
  ASSERT_TRUE(ha.ok() && hb.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_queue = 1,
                                      .start_paused = true});
  // Admitting a request on b promotes b (hit + MRU); the rejected request on
  // a must leave a as the LRU victim and the hit count untouched.
  auto admitted = service.Submit(*hb, MakeReferenceProblem(b, 134).b);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(registry.Snapshot().hits, 1u);
  auto rejected = service.Submit(*ha, MakeReferenceProblem(a, 135).b);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(registry.Snapshot().hits, 1u);  // Peek counted no hit

  auto hc = registry.Register(c, "c", TinyOptions());
  ASSERT_TRUE(hc.ok());
  EXPECT_FALSE(registry.Contains(*ha));  // a stayed LRU and was evicted
  EXPECT_TRUE(registry.Contains(*hb));
  service.Start();
  EXPECT_TRUE(admitted->get().status.ok());
}

TEST(ServiceTest, MixedDeadlinePreloadMissRateAndChecksumVsFifoSeed) {
  // Satellite regression: under a paused service, enqueue mixed-deadline
  // requests, resume, and assert completion order (via dequeue_seq),
  // miss rate, and that DeterministicOptions replay checksums are unchanged
  // from the FIFO seed.
  std::vector<Csr> corpus = {TestMatrix(141), TestMatrix(142, 100)};
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    auto handle = registry.Register(corpus[i], "m" + std::to_string(i),
                                    TinyOptions());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  const RequestTrace trace = GenerateZipfTrace(16, 2, 1.1, 143);

  const auto replay_checksum = [&](QueuePolicy policy) {
    ServiceOptions options = SolveService::DeterministicOptions();
    options.policy = policy;
    SolveService service(&registry, options);
    auto report = ReplayTrace(service, handles, trace);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->completed, trace.requests.size());
    EXPECT_EQ(report->wrong, 0u);
    return report->solution_checksum;
  };
  // A deadline-free workload must replay byte-identically under both
  // policies: EDF with all-infinite deadlines IS the FIFO seed order.
  EXPECT_EQ(replay_checksum(QueuePolicy::kFifo),
            replay_checksum(QueuePolicy::kEdf));

  // Mixed deadlines: one already-expired request among live ones. EDF pulls
  // the tight deadline to the front; it expires cleanly, everything else
  // completes, and the miss rate is exactly 1/4.
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 1,
                                      .start_paused = true});
  const Csr& matrix = corpus[0];
  RequestOptions tight;
  tight.deadline_ms = 0.01;
  RequestOptions loose;
  loose.deadline_ms = 60000.0;
  std::vector<std::future<ServeResult>> futures;
  const auto submit = [&](std::uint64_t seed, RequestOptions options) {
    auto submitted =
        service.Submit(handles[0], MakeReferenceProblem(matrix, seed).b,
                       options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  };
  submit(144, loose);
  submit(145, RequestOptions{});
  submit(146, tight);
  submit(147, RequestOptions{});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();

  ServeResult expired = futures[2].get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.dequeue_seq, 0u);  // EDF served the tightest first
  ServeResult loose_result = futures[0].get();
  EXPECT_TRUE(loose_result.status.ok());
  EXPECT_EQ(loose_result.dequeue_seq, 1u);  // then the 60 s deadline
  EXPECT_TRUE(futures[1].get().status.ok());
  EXPECT_TRUE(futures[3].get().status.ok());
  service.Shutdown();

  const ServiceStats::Totals totals = service.stats().totals();
  EXPECT_EQ(totals.deadline_misses, 1u);
  EXPECT_EQ(totals.requests, 3u);
}

TEST(ReplayTest, ZipfTraceIsDeterministicAndSkewed) {
  const RequestTrace a = GenerateZipfTrace(200, 8, 1.2, 7);
  const RequestTrace b = GenerateZipfTrace(200, 8, 1.2, 7);
  ASSERT_EQ(a.requests.size(), 200u);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].matrix, b.requests[i].matrix);
    EXPECT_EQ(a.requests[i].seed, b.requests[i].seed);
  }
  // The hottest matrix should dominate: > 25% of requests under s=1.2.
  std::vector<int> counts(8, 0);
  for (const TraceRequest& request : a.requests) {
    ++counts[static_cast<std::size_t>(request.matrix)];
  }
  EXPECT_GT(*std::max_element(counts.begin(), counts.end()), 50);
}

TEST(ReplayTest, TraceJsonRoundTrips) {
  RequestTrace trace = GenerateZipfTrace(25, 4, 1.0, 11);
  // Deadlines on even-index requests only: the round trip must preserve
  // both stamped and deadline-free records.
  AssignDeadlines(trace, 5.0, 50.0, 12);
  for (std::size_t i = 1; i < trace.requests.size(); i += 2) {
    trace.requests[i].deadline_ms = 0.0;
  }
  const std::string path = ::testing::TempDir() + "serve_trace_test.json";
  ASSERT_TRUE(WriteTraceJson(trace, path).ok());
  auto loaded = ReadTraceJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(loaded->requests[i].matrix, trace.requests[i].matrix);
    EXPECT_EQ(loaded->requests[i].seed, trace.requests[i].seed);
    EXPECT_NEAR(loaded->requests[i].deadline_ms, trace.requests[i].deadline_ms,
                1e-6);
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, AssignDeadlinesIsDeterministicAndInRange) {
  RequestTrace a = GenerateZipfTrace(40, 3, 1.0, 13);
  RequestTrace b = a;
  AssignDeadlines(a, 2.0, 20.0, 14);
  AssignDeadlines(b, 2.0, 20.0, 14);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].deadline_ms, b.requests[i].deadline_ms);
    EXPECT_GE(a.requests[i].deadline_ms, 2.0);
    EXPECT_LE(a.requests[i].deadline_ms, 20.0);
  }
}

TEST(StatsTest, SummarizePercentilesAndJson) {
  LatencySummary summary = Summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 2.5);
  EXPECT_DOUBLE_EQ(summary.p50_ms, 2.5);
  EXPECT_DOUBLE_EQ(summary.max_ms, 4.0);

  ServiceStats stats;
  stats.RecordBatch(3);
  stats.RecordRequest({.handle = 1,
                       .name = "m",
                       .outcome = ServiceStats::Outcome::kOk,
                       .batch_size = 3,
                       .queue_wait_ms = 0.5,
                       .solve_ms = 1.0,
                       .deadline_budget_ms = 12.0,
                       .est_cost_ms = 2.0});
  stats.RecordRejection();
  stats.RecordReorder();
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rejections\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"reorders\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"batch_occupancy\": [0, 0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_buckets\""), std::string::npos);
  EXPECT_NE(stats.ToTable().find("per-handle"), std::string::npos);

  // est 2.0 vs actual 1.0 -> |2-1|/1 = 1.0 mean cost error.
  EXPECT_DOUBLE_EQ(stats.MeanCostErrorRatio(), 1.0);
  // The 12 ms budget lands in the (5, 20] bucket, served in time.
  const auto buckets = stats.DeadlineBuckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[1].total, 1u);
  EXPECT_EQ(buckets[1].missed, 0u);
}

TEST(StatsTest, ExpiredRequestsBucketAsMissesWithoutSolveSamples) {
  ServiceStats stats;
  stats.RecordRequest({.handle = 1,
                       .name = "m",
                       .outcome = ServiceStats::Outcome::kExpired,
                       .batch_size = 1,
                       .queue_wait_ms = 7.5,
                       .solve_ms = 0.0,
                       .deadline_budget_ms = 3.0,
                       .est_cost_ms = 1.0});
  const ServiceStats::Totals totals = stats.totals();
  EXPECT_EQ(totals.requests, 0u);
  EXPECT_EQ(totals.failures, 0u);
  EXPECT_EQ(totals.deadline_misses, 1u);
  const auto buckets = stats.DeadlineBuckets();
  EXPECT_EQ(buckets[0].total, 1u);   // 3 ms budget -> <= 5 ms bucket
  EXPECT_EQ(buckets[0].missed, 1u);
  // Queue wait is real for an expired request; solve latency is not.
  EXPECT_NE(stats.ToJson().find("\"queue_wait\": {\"count\": 1"),
            std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"solve\": {\"count\": 0"),
            std::string::npos);
}

}  // namespace
}  // namespace capellini::serve
