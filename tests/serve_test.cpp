// Tests for the serving layer: registry LRU + byte budget, shared analysis
// under concurrent readers, admission control, coalesced (batched) solves,
// deadlines, and the determinism-mode byte-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/solver.h"
#include "gen/level_structured.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "serve/registry.h"
#include "serve/replay.h"
#include "serve/service.h"

namespace capellini::serve {
namespace {

Csr TestMatrix(std::uint64_t seed, Idx components_per_level = 150) {
  return MakeLevelStructured({.num_levels = 6,
                              .components_per_level = components_per_level,
                              .avg_nnz_per_row = 3.0,
                              .size_jitter = 0.2,
                              .interleave = false,
                              .seed = seed});
}

SolverOptions TinyOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  return options;
}

std::size_t EntryBytes(const Csr& matrix) {
  MatrixRegistry probe;
  auto handle = probe.Register(matrix, "probe", TinyOptions());
  return (*probe.Acquire(*handle))->bytes;
}

TEST(RegistryTest, RegisterAcquireSolve) {
  MatrixRegistry registry;
  const Csr matrix = TestMatrix(31);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 32);
  auto handle = registry.Register(matrix, "m31", TinyOptions());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->name, "m31");
  EXPECT_GT((*entry)->bytes, 0u);
  EXPECT_TRUE((*entry)->solver.analyzed());  // memoized at registration

  auto result = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);

  const RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.registrations, 1u);
  EXPECT_EQ(snapshot.hits, 1u);  // the one Acquire above
  EXPECT_EQ(snapshot.resident_bytes, (*entry)->bytes);
}

TEST(RegistryTest, RejectsNonLowerTriangularWithStatusNotAbort) {
  MatrixRegistry registry;
  const Csr upper = TransposeCsr(TestMatrix(33));
  auto handle = registry.Register(upper, "upper", TinyOptions());
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, LruEvictionAndReRegistration) {
  const Csr a = TestMatrix(41);
  const Csr b = TestMatrix(42);
  const std::size_t bytes = EntryBytes(a);

  // Budget fits roughly one matrix: registering B evicts A (the LRU).
  MatrixRegistry registry(RegistryOptions{.byte_budget = bytes * 3 / 2});
  auto ha = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(ha.ok());
  auto hb = registry.Register(b, "b", TinyOptions());
  ASSERT_TRUE(hb.ok());

  EXPECT_FALSE(registry.Contains(*ha));
  EXPECT_TRUE(registry.Contains(*hb));
  auto miss = registry.Acquire(*ha);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Snapshot().evictions, 1u);
  EXPECT_EQ(registry.Snapshot().misses, 1u);

  // Re-registration gets a fresh handle and solves correctly.
  auto ha2 = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(ha2.ok());
  EXPECT_NE(*ha2, *ha);
  EXPECT_FALSE(registry.Contains(*hb));  // b became the LRU victim
  const ReferenceProblem problem = MakeReferenceProblem(a, 43);
  auto result =
      (*registry.Acquire(*ha2))->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
}

TEST(RegistryTest, OversizedMatrixRejectedWithResourceExhausted) {
  const Csr a = TestMatrix(44);
  MatrixRegistry registry(RegistryOptions{.byte_budget = EntryBytes(a) / 2});
  auto handle = registry.Register(a, "too-big", TinyOptions());
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
}

TEST(RegistryTest, EvictionKeepsInFlightReferencesAlive) {
  MatrixRegistry registry;
  const Csr a = TestMatrix(45);
  auto handle = registry.Register(a, "a", TinyOptions());
  ASSERT_TRUE(handle.ok());
  auto entry = registry.Acquire(*handle);
  ASSERT_TRUE(entry.ok());

  EXPECT_TRUE(registry.Evict(*handle));
  EXPECT_FALSE(registry.Contains(*handle));

  // The held shared_ptr still backs a correct solve.
  const ReferenceProblem problem = MakeReferenceProblem(a, 46);
  auto result = (*entry)->solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
}

TEST(SolverTest, AnalysisIsSharedAndSafeUnderConcurrentReaders) {
  const Solver solver(TestMatrix(51), TinyOptions());
  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  std::vector<const Analysis*> seen(kReaders, nullptr);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&solver, &seen, i] {
      seen[static_cast<std::size_t>(i)] = &solver.analysis();
    });
  }
  for (std::thread& t : readers) t.join();
  for (const Analysis* a : seen) {
    EXPECT_EQ(a, seen[0]);  // computed once, shared by every reader
  }
  EXPECT_TRUE(solver.analyzed());
  EXPECT_EQ(&solver.Stats(), &solver.analysis().stats);
  EXPECT_EQ(&solver.Levels(), &solver.analysis().levels);
}

TEST(ServiceTest, ServesRequestsAndVerifies) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(61), "m61", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry, ServiceOptions{.workers = 2});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  std::vector<std::future<ServeResult>> futures;
  std::vector<ReferenceProblem> problems;
  for (int i = 0; i < 6; ++i) {
    problems.push_back(
        MakeReferenceProblem(matrix, 62 + static_cast<std::uint64_t>(i)));
    auto submitted = service.Submit(*handle, problems.back().b);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_LE(MaxRelativeError(result.solve.x, problems[i].x_true), 1e-10);
    EXPECT_GE(result.batch_size, 1);
  }
  service.Shutdown();
  EXPECT_EQ(service.stats().totals().requests, 6u);
}

TEST(ServiceTest, CoalescesSameHandleRequestsIntoOneLaunch) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(63), "m63", TinyOptions());
  ASSERT_TRUE(handle.ok());

  // Paused workers make coalescing deterministic: 5 queued requests with
  // max_batch=4 must group as {4, 1}.
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = 4,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;
  std::vector<std::future<ServeResult>> futures;
  std::vector<ReferenceProblem> problems;
  for (int i = 0; i < 5; ++i) {
    problems.push_back(
        MakeReferenceProblem(matrix, 70 + static_cast<std::uint64_t>(i)));
    auto submitted = service.Submit(*handle, problems.back().b, capellini);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  int batched = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_LE(MaxRelativeError(result.solve.x, problems[i].x_true), 1e-10);
    if (result.batch_size == 4) ++batched;
  }
  EXPECT_EQ(batched, 4);
  service.Shutdown();
  const std::vector<std::uint64_t> occupancy = service.stats().BatchOccupancy();
  ASSERT_EQ(occupancy.size(), 4u);
  EXPECT_EQ(occupancy[0], 1u);  // the leftover solo
  EXPECT_EQ(occupancy[3], 1u);  // the coalesced four
}

TEST(ServiceTest, BatchesUpperSystemSolvesThroughReversedRegistration) {
  // The backward-substitution half of a direct solve, served: register the
  // index-reversed upper system once, batch k upper solves, un-reverse and
  // compare against the serial host solutions.
  const Csr lower = TestMatrix(81);
  const Csr upper = TransposeCsr(lower);
  ASSERT_TRUE(IsUpperTriangularWithDiagonal(upper));
  const auto n = static_cast<std::size_t>(upper.rows());

  MatrixRegistry registry;
  auto handle =
      registry.Register(ReverseSystem(upper), "upper-reversed", TinyOptions());
  ASSERT_TRUE(handle.ok());

  constexpr int kRhs = 4;
  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_batch = kRhs,
                                      .start_paused = true});
  RequestOptions capellini;
  capellini.algorithm = Algorithm::kCapellini;

  std::vector<std::vector<Val>> bs(kRhs);
  std::vector<std::future<ServeResult>> futures;
  Rng rng(82);
  for (int r = 0; r < kRhs; ++r) {
    bs[static_cast<std::size_t>(r)].resize(n);
    for (Val& v : bs[static_cast<std::size_t>(r)]) {
      v = rng.NextDouble(0.5, 1.5);
    }
    std::vector<Val> b_reversed(n);
    ReverseVector(bs[static_cast<std::size_t>(r)], b_reversed);
    auto submitted = service.Submit(*handle, std::move(b_reversed), capellini);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.Start();

  for (int r = 0; r < kRhs; ++r) {
    ServeResult result = futures[static_cast<std::size_t>(r)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.batch_size, kRhs);  // one launch served all k
    std::vector<Val> x(n);
    ReverseVector(result.solve.x, x);

    auto serial = SolveUpperSystem(upper, bs[static_cast<std::size_t>(r)],
                                   Algorithm::kSerialCpu, TinyOptions());
    ASSERT_TRUE(serial.ok());
    EXPECT_LE(MaxRelativeError(x, serial->x), 1e-10);
  }
}

TEST(ServiceTest, QueueFullSubmissionsReturnStatusNoAbort) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(91), "m91", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1,
                                      .max_queue = 1,
                                      .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 92);

  auto accepted = service.Submit(*handle, problem.b);
  ASSERT_TRUE(accepted.ok());
  auto rejected = service.Submit(*handle, problem.b);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().totals().rejections, 1u);

  service.Start();
  ServeResult result = accepted->get();
  EXPECT_TRUE(result.status.ok());
}

TEST(ServiceTest, SubmitValidatesHandleAndLength) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(93), "m93", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());

  auto unknown = service.Submit(*handle + 17, std::vector<Val>(10, 1.0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto short_b = service.Submit(*handle, std::vector<Val>(3, 1.0));
  ASSERT_FALSE(short_b.ok());
  EXPECT_EQ(short_b.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, ExpiredRequestsGetDeadlineExceeded) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(94), "m94", TinyOptions());
  ASSERT_TRUE(handle.ok());

  SolveService service(&registry,
                       ServiceOptions{.workers = 1, .start_paused = true});
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 95);
  RequestOptions tight;
  tight.deadline_ms = 0.01;
  auto submitted = service.Submit(*handle, problem.b, tight);
  ASSERT_TRUE(submitted.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();
  ServeResult result = submitted->get();
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().totals().deadline_misses, 1u);
}

TEST(ServiceTest, SubmitAfterShutdownFailsCleanly) {
  MatrixRegistry registry;
  auto handle = registry.Register(TestMatrix(96), "m96", TinyOptions());
  ASSERT_TRUE(handle.ok());
  SolveService service(&registry, SolveService::DeterministicOptions());
  service.Shutdown();
  const Csr& matrix = (*registry.Acquire(*handle))->solver.matrix();
  auto submitted =
      service.Submit(*handle, MakeReferenceProblem(matrix, 97).b);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, DeterminismModeByteReproducesSerialOneShotPath) {
  // Two matrices, a zipf trace, and the determinism contract: the service at
  // workers=1 / max_batch=1 must produce the exact bytes of a serial loop of
  // one-shot Solver::Solve calls.
  std::vector<Csr> corpus = {TestMatrix(101), TestMatrix(102, 100)};
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    auto handle = registry.Register(corpus[i], "m" + std::to_string(i),
                                    TinyOptions());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  const RequestTrace trace = GenerateZipfTrace(16, 2, 1.1, 103);

  // Serial one-shot baseline: a fresh Solver per request, exactly what a
  // caller without the serving layer would run.
  std::uint64_t serial_checksum = kFnvSeed;
  for (const TraceRequest& request : trace.requests) {
    const Csr& matrix = corpus[static_cast<std::size_t>(request.matrix)];
    const Solver solver(matrix, TinyOptions());
    const ReferenceProblem problem =
        MakeReferenceProblem(matrix, request.seed);
    auto result = solver.Solve(solver.Recommend(), problem.b);
    ASSERT_TRUE(result.ok());
    serial_checksum = HashBytes(serial_checksum, result->x.data(),
                                result->x.size() * sizeof(Val));
  }

  SolveService service(&registry, SolveService::DeterministicOptions());
  auto report = ReplayTrace(service, handles, trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->completed, trace.requests.size());
  EXPECT_EQ(report->wrong, 0u);
  EXPECT_EQ(report->solution_checksum, serial_checksum);
}

TEST(ReplayTest, ZipfTraceIsDeterministicAndSkewed) {
  const RequestTrace a = GenerateZipfTrace(200, 8, 1.2, 7);
  const RequestTrace b = GenerateZipfTrace(200, 8, 1.2, 7);
  ASSERT_EQ(a.requests.size(), 200u);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].matrix, b.requests[i].matrix);
    EXPECT_EQ(a.requests[i].seed, b.requests[i].seed);
  }
  // The hottest matrix should dominate: > 25% of requests under s=1.2.
  std::vector<int> counts(8, 0);
  for (const TraceRequest& request : a.requests) {
    ++counts[static_cast<std::size_t>(request.matrix)];
  }
  EXPECT_GT(*std::max_element(counts.begin(), counts.end()), 50);
}

TEST(ReplayTest, TraceJsonRoundTrips) {
  RequestTrace trace = GenerateZipfTrace(25, 4, 1.0, 11);
  const std::string path = ::testing::TempDir() + "serve_trace_test.json";
  ASSERT_TRUE(WriteTraceJson(trace, path).ok());
  auto loaded = ReadTraceJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(loaded->requests[i].matrix, trace.requests[i].matrix);
    EXPECT_EQ(loaded->requests[i].seed, trace.requests[i].seed);
  }
  std::remove(path.c_str());
}

TEST(StatsTest, SummarizePercentilesAndJson) {
  LatencySummary summary = Summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 2.5);
  EXPECT_DOUBLE_EQ(summary.p50_ms, 2.5);
  EXPECT_DOUBLE_EQ(summary.max_ms, 4.0);

  ServiceStats stats;
  stats.RecordBatch(3);
  stats.RecordRequest(1, "m", true, 3, 0.5, 1.0);
  stats.RecordRejection();
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rejections\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"batch_occupancy\": [0, 0, 1]"), std::string::npos);
  EXPECT_NE(stats.ToTable().find("per-handle"), std::string::npos);
}

}  // namespace
}  // namespace capellini::serve
