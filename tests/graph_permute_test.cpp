// Tests for PermuteRowsByLevel — the level-set preprocessing's matrix copy.
#include <gtest/gtest.h>

#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "graph/levels.h"
#include "host/serial.h"
#include "matrix/triangular.h"

namespace capellini {
namespace {

TEST(PermuteTest, RowsMatchOrder) {
  const Csr matrix = MakeRandomLower({.rows = 400,
                                      .avg_strict_nnz_per_row = 3.0,
                                      .window = 0,
                                      .empty_row_fraction = 0.2,
                                      .seed = 21});
  const LevelSets levels = ComputeLevelSets(matrix);
  const Csr permuted = PermuteRowsByLevel(matrix, levels);

  ASSERT_EQ(permuted.rows(), matrix.rows());
  ASSERT_EQ(permuted.nnz(), matrix.nnz());
  for (Idx k = 0; k < matrix.rows(); ++k) {
    const Idx src = levels.order[static_cast<std::size_t>(k)];
    const auto expected_cols = matrix.RowCols(src);
    const auto got_cols = permuted.RowCols(k);
    ASSERT_EQ(got_cols.size(), expected_cols.size()) << "row " << k;
    for (std::size_t j = 0; j < got_cols.size(); ++j) {
      EXPECT_EQ(got_cols[j], expected_cols[j]);
      EXPECT_DOUBLE_EQ(permuted.RowVals(k)[j], matrix.RowVals(src)[j]);
    }
  }
}

TEST(PermuteTest, LevelsBecomeContiguousRowRanges) {
  const Csr matrix = MakeLevelStructured({.num_levels = 9,
                                          .components_per_level = 50,
                                          .avg_nnz_per_row = 2.8,
                                          .size_jitter = 0.4,
                                          .interleave = true,
                                          .seed = 22});
  const LevelSets levels = ComputeLevelSets(matrix);
  const Csr permuted = PermuteRowsByLevel(matrix, levels);

  // Solving the permuted system row-by-row in PERMUTED order is valid: all
  // column references of permuted row k point to original rows of earlier
  // levels (or the row itself), which appear earlier in `order`.
  std::vector<Idx> position(static_cast<std::size_t>(matrix.rows()));
  for (Idx k = 0; k < matrix.rows(); ++k) {
    position[static_cast<std::size_t>(
        levels.order[static_cast<std::size_t>(k)])] = k;
  }
  for (Idx k = 0; k < permuted.rows(); ++k) {
    const auto cols = permuted.RowCols(k);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      EXPECT_LT(position[static_cast<std::size_t>(cols[j])], k);
    }
  }
}

TEST(PermuteTest, IdentityWhenAlreadyLevelSorted) {
  // A level-structured matrix laid out level by level is already sorted, and
  // the stable ordering keeps row order intact.
  const Csr matrix = MakeLevelStructured({.num_levels = 5,
                                          .components_per_level = 40,
                                          .avg_nnz_per_row = 2.5,
                                          .size_jitter = 0.0,
                                          .interleave = false,
                                          .seed = 23});
  const LevelSets levels = ComputeLevelSets(matrix);
  for (Idx k = 0; k < matrix.rows(); ++k) {
    EXPECT_EQ(levels.order[static_cast<std::size_t>(k)], k);
  }
  EXPECT_EQ(PermuteRowsByLevel(matrix, levels), matrix);
}

}  // namespace
}  // namespace capellini
