// Tests for the level reorderings: GatherRowsByLevel (schedule-order-only
// contract) and PermuteSystemByLevel (full symmetric permutation).
#include <gtest/gtest.h>

#include <random>

#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "graph/levels.h"
#include "host/serial.h"
#include "matrix/triangular.h"

namespace capellini {
namespace {

TEST(GatherTest, RowsMatchOrder) {
  const Csr matrix = MakeRandomLower({.rows = 400,
                                      .avg_strict_nnz_per_row = 3.0,
                                      .window = 0,
                                      .empty_row_fraction = 0.2,
                                      .seed = 21});
  const LevelSets levels = ComputeLevelSets(matrix);
  const Csr permuted = GatherRowsByLevel(matrix, levels);

  ASSERT_EQ(permuted.rows(), matrix.rows());
  ASSERT_EQ(permuted.nnz(), matrix.nnz());
  for (Idx k = 0; k < matrix.rows(); ++k) {
    const Idx src = levels.order[static_cast<std::size_t>(k)];
    const auto expected_cols = matrix.RowCols(src);
    const auto got_cols = permuted.RowCols(k);
    ASSERT_EQ(got_cols.size(), expected_cols.size()) << "row " << k;
    for (std::size_t j = 0; j < got_cols.size(); ++j) {
      EXPECT_EQ(got_cols[j], expected_cols[j]);
      EXPECT_DOUBLE_EQ(permuted.RowVals(k)[j], matrix.RowVals(src)[j]);
    }
  }
}

TEST(GatherTest, LevelsBecomeContiguousRowRanges) {
  const Csr matrix = MakeLevelStructured({.num_levels = 9,
                                          .components_per_level = 50,
                                          .avg_nnz_per_row = 2.8,
                                          .size_jitter = 0.4,
                                          .interleave = true,
                                          .seed = 22});
  const LevelSets levels = ComputeLevelSets(matrix);
  const Csr permuted = GatherRowsByLevel(matrix, levels);

  // Solving the permuted system row-by-row in PERMUTED order is valid: all
  // column references of permuted row k point to original rows of earlier
  // levels (or the row itself), which appear earlier in `order`.
  std::vector<Idx> position(static_cast<std::size_t>(matrix.rows()));
  for (Idx k = 0; k < matrix.rows(); ++k) {
    position[static_cast<std::size_t>(
        levels.order[static_cast<std::size_t>(k)])] = k;
  }
  for (Idx k = 0; k < permuted.rows(); ++k) {
    const auto cols = permuted.RowCols(k);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      EXPECT_LT(position[static_cast<std::size_t>(cols[j])], k);
    }
  }
}

TEST(GatherTest, IdentityWhenAlreadyLevelSorted) {
  // A level-structured matrix laid out level by level is already sorted, and
  // the stable ordering keeps row order intact.
  const Csr matrix = MakeLevelStructured({.num_levels = 5,
                                          .components_per_level = 40,
                                          .avg_nnz_per_row = 2.5,
                                          .size_jitter = 0.0,
                                          .interleave = false,
                                          .seed = 23});
  const LevelSets levels = ComputeLevelSets(matrix);
  for (Idx k = 0; k < matrix.rows(); ++k) {
    EXPECT_EQ(levels.order[static_cast<std::size_t>(k)], k);
  }
  EXPECT_EQ(GatherRowsByLevel(matrix, levels), matrix);
}

// Contract pin: the gather output keeps columns in the ORIGINAL numbering.
// On any matrix whose level order moves rows, it is NOT a lower-triangular
// system (a later-numbered row of an early level gathers above a column
// reference to itself), so it must never be handed to a solver directly.
TEST(GatherTest, OutputIsScheduleOrderOnlyNotTriangular) {
  const Csr matrix = MakeLevelStructured({.num_levels = 6,
                                          .components_per_level = 30,
                                          .avg_nnz_per_row = 2.7,
                                          .size_jitter = 0.3,
                                          .interleave = true,
                                          .seed = 24});
  const LevelSets levels = ComputeLevelSets(matrix);
  bool moved = false;
  for (Idx k = 0; k < matrix.rows(); ++k) {
    if (levels.order[static_cast<std::size_t>(k)] != k) moved = true;
  }
  ASSERT_TRUE(moved) << "generator produced an already-sorted matrix";

  const Csr gathered = GatherRowsByLevel(matrix, levels);
  // Columns still name original rows: row k's diagonal entry is order[k],
  // not k, whenever the order moved that row.
  EXPECT_FALSE(gathered.IsLowerTriangularWithDiagonal());
}

TEST(SymmetricPermuteTest, StaysTriangularAndLevelContiguous) {
  const Csr matrix = MakeLevelStructured({.num_levels = 7,
                                          .components_per_level = 40,
                                          .avg_nnz_per_row = 2.9,
                                          .size_jitter = 0.5,
                                          .interleave = true,
                                          .seed = 25});
  const LevelSets levels = ComputeLevelSets(matrix);
  const PermutedSystem sys = PermuteSystemByLevel(matrix, levels);

  ASSERT_EQ(sys.matrix.rows(), matrix.rows());
  ASSERT_EQ(sys.matrix.nnz(), matrix.nnz());
  EXPECT_TRUE(sys.matrix.Validate().ok());
  EXPECT_TRUE(sys.matrix.IsLowerTriangularWithDiagonal());

  // The permuted system's level sets are the original ones relabelled: row k
  // sits at level level_of[order[k]], and levels stay contiguous index
  // ranges, which is the entire point of the scheduled reordering.
  const LevelSets relevels = ComputeLevelSets(sys.matrix);
  ASSERT_EQ(relevels.num_levels(), levels.num_levels());
  for (Idx k = 0; k < matrix.rows(); ++k) {
    EXPECT_EQ(relevels.level_of[static_cast<std::size_t>(k)],
              levels.level_of[static_cast<std::size_t>(
                  sys.order[static_cast<std::size_t>(k)])]);
    // Already level-sorted: identity order.
    EXPECT_EQ(relevels.order[static_cast<std::size_t>(k)], k);
  }
}

TEST(SymmetricPermuteTest, SolutionRoundTripsThroughRemap) {
  const Csr matrix = MakeRandomLower({.rows = 500,
                                      .avg_strict_nnz_per_row = 3.5,
                                      .window = 0,
                                      .empty_row_fraction = 0.1,
                                      .seed = 26});
  const LevelSets levels = ComputeLevelSets(matrix);
  const PermutedSystem sys = PermuteSystemByLevel(matrix, levels);

  std::mt19937_64 rng(27);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Val> x_ref(static_cast<std::size_t>(matrix.rows()));
  for (Val& v : x_ref) v = dist(rng);
  std::vector<Val> b(x_ref.size());
  matrix.SpMv(x_ref, b);

  // Solve (P L P^T) y = P b and map back: x = P^T y.
  std::vector<Val> b_perm(b.size());
  PermuteVector(sys.order, b, b_perm);
  std::vector<Val> y(b.size());
  ASSERT_TRUE(host::SolveSerial(sys.matrix, b_perm, y).ok());
  std::vector<Val> x(b.size());
  UnpermuteVector(sys.order, y, x);

  for (std::size_t i = 0; i < x.size(); ++i) {
    // Accumulation order differs from the direct solve, so compare to a
    // rounding tolerance rather than bit-for-bit.
    EXPECT_NEAR(x[i], x_ref[i], 1e-9) << "row " << i;
  }
}

TEST(SymmetricPermuteTest, PermuteUnpermuteAreInverses) {
  const Csr matrix = MakeLevelStructured({.num_levels = 4,
                                          .components_per_level = 25,
                                          .avg_nnz_per_row = 2.4,
                                          .size_jitter = 0.6,
                                          .interleave = true,
                                          .seed = 28});
  const LevelSets levels = ComputeLevelSets(matrix);
  const PermutedSystem sys = PermuteSystemByLevel(matrix, levels);

  std::vector<Val> v(static_cast<std::size_t>(matrix.rows()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<Val>(i) * 0.5 - 3.0;
  }
  std::vector<Val> forward(v.size());
  std::vector<Val> back(v.size());
  PermuteVector(sys.order, v, forward);
  UnpermuteVector(sys.order, forward, back);
  EXPECT_EQ(back, v);

  for (Idx k = 0; k < matrix.rows(); ++k) {
    EXPECT_EQ(sys.inverse[static_cast<std::size_t>(
                  sys.order[static_cast<std::size_t>(k)])],
              k);
  }
}

}  // namespace
}  // namespace capellini
