// Focused tests of the SIMT reconvergence machinery: nested divergence,
// exits inside divergent paths, loop-frame merging, shuffle edge lanes,
// special registers, and the L2 hit/miss accounting.
#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/kernel.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace capellini::sim {
namespace {

LaunchStats RunKernel(const Kernel& kernel, DeviceMemory& memory,
                std::int64_t num_threads, std::vector<std::int64_t> params) {
  Machine machine(TinyTestDevice(), &memory);
  auto stats = machine.Launch(kernel, {.num_threads = num_threads,
                                       .threads_per_block = 64},
                              params);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? *stats : LaunchStats{};
}

/// Nested if inside if: lanes write 4 distinct values by quadrant, then all
/// add 100 after full reconvergence.
TEST(DivergenceTest, NestedBranchesReconverge) {
  KernelBuilder b("nested", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int p1 = b.R("p1");
  const int p2 = b.R("p2");
  const int v = b.R("v");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(py, 0);
  b.AndI(p1, tid, 2);  // outer selector
  b.AndI(p2, tid, 1);  // inner selector

  Label outer_taken = b.NewLabel();
  Label join = b.NewLabel();
  Label inner_a = b.NewLabel();
  Label join_a = b.NewLabel();
  Label inner_b = b.NewLabel();
  Label join_b = b.NewLabel();

  b.Brnz(p1, outer_taken, join);
  {  // p1 == 0
    b.Brnz(p2, inner_a, join_a);
    b.MovI(v, 10);  // tid % 4 == 0
    b.Jmp(join_a);
    b.Bind(inner_a);
    b.MovI(v, 11);  // tid % 4 == 1
    b.Bind(join_a);
    b.Jmp(join);
  }
  b.Bind(outer_taken);
  {  // p1 != 0
    b.Brnz(p2, inner_b, join_b);
    b.MovI(v, 12);  // tid % 4 == 2
    b.Jmp(join_b);
    b.Bind(inner_b);
    b.MovI(v, 13);  // tid % 4 == 3
    b.Bind(join_b);
  }
  b.Bind(join);
  b.AddI(v, v, 100);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8I(addr, v);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<std::int64_t>(64);
  RunKernel(kernel, memory, 64, {static_cast<std::int64_t>(py_dev)});
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(memory.LoadI64(py_dev + 8 * static_cast<std::uint64_t>(i)),
              110 + i % 4)
        << i;
  }
}

/// Some lanes exit INSIDE a divergent path; the rest must still finish.
TEST(DivergenceTest, ExitInsideDivergentPath) {
  KernelBuilder b("exit_in_branch", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int v = b.R("v");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(py, 0);
  b.AndI(pred, tid, 1);
  Label odd = b.NewLabel();
  Label join = b.NewLabel();
  b.Brnz(pred, odd, join);
  b.Jmp(join);  // even lanes continue
  b.Bind(odd);
  b.Exit();  // odd lanes die here
  b.Bind(join);
  b.MovI(v, 7);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8I(addr, v);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<std::int64_t>(64);
  memory.Fill(py_dev, 64 * 8, 0);
  RunKernel(kernel, memory, 64, {static_cast<std::int64_t>(py_dev)});
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(memory.LoadI64(py_dev + 8 * static_cast<std::uint64_t>(i)),
              i % 2 ? 0 : 7)
        << i;
  }
}

/// A loop whose lanes exit at iteration == lane id: per-iteration divergence
/// with frame merging must not blow the stack or lose lanes.
TEST(DivergenceTest, LoopFrameMergingKeepsAllLanes) {
  KernelBuilder b("loop_merge", 1);
  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int k = b.R("k");
  const int acc = b.R("acc");
  const int pred = b.R("pred");
  b.S2R(tid, Special::kGlobalTid);
  b.S2R(lane, Special::kLane);
  b.LdParam(py, 0);
  b.MovI(k, 0);
  b.MovI(acc, 0);
  Label top = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(top);
  b.SetLe(pred, k, lane);
  b.Brz(pred, done, done);
  b.Add(acc, acc, k);
  b.AddI(k, k, 1);
  b.Jmp(top);
  b.Bind(done);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8I(addr, acc);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<std::int64_t>(32);
  RunKernel(kernel, memory, 32, {static_cast<std::int64_t>(py_dev)});
  for (std::int64_t lane_id = 0; lane_id < 32; ++lane_id) {
    EXPECT_EQ(memory.LoadI64(py_dev + 8 * static_cast<std::uint64_t>(lane_id)),
              lane_id * (lane_id + 1) / 2)
        << lane_id;
  }
}

TEST(DivergenceTest, ShuffleOutOfRangeKeepsOwnValue) {
  KernelBuilder b("shfl_edge", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int f = b.F("f");
  const int g = b.F("g");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(py, 0);
  b.FMovI(f, 1.0);
  // lane + 16 >= 32 for lanes 16..31: those keep their own value.
  b.ShflDownF(g, f, 16);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8F(addr, g);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<double>(32);
  RunKernel(kernel, memory, 32, {static_cast<std::int64_t>(py_dev)});
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(memory.LoadF64(py_dev + 8 * static_cast<std::uint64_t>(i)),
                     1.0);
  }
}

TEST(DivergenceTest, SpecialRegisters) {
  KernelBuilder b("specials", 1);
  const int tid = b.R("tid");
  const int out = b.R("out");
  const int addr = b.R("addr");
  const int v = b.R("v");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(out, 0);
  // pack warp_id * 1000 + lane + grid_threads * 1'000'000
  b.S2R(v, Special::kWarpId);
  b.MulI(v, v, 1000);
  const int lane = b.R("lane");
  b.S2R(lane, Special::kLane);
  b.Add(v, v, lane);
  const int grid = b.R("grid");
  b.S2R(grid, Special::kGridThreads);
  b.MulI(grid, grid, 1'000'000);
  b.Add(v, v, grid);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, out);
  b.St8I(addr, v);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr out_dev = memory.AllocArray<std::int64_t>(96);
  RunKernel(kernel, memory, 96, {static_cast<std::int64_t>(out_dev)});
  for (std::int64_t i = 0; i < 96; ++i) {
    const std::int64_t expected = (i / 32) * 1000 + (i % 32) + 96'000'000;
    EXPECT_EQ(memory.LoadI64(out_dev + 8 * static_cast<std::uint64_t>(i)),
              expected)
        << i;
  }
}

/// Two loads of the same sector: the second is an L2 hit, so DRAM bytes stay
/// at one sector while transactions count both.
TEST(MemoryModelTest, L2HitsDoNotRecountDramBytes) {
  KernelBuilder b("l2", 1);
  const int tid = b.R("tid");
  const int px = b.R("px");
  const int f = b.F("f");
  const int pred = b.R("pred");
  b.S2R(tid, Special::kGlobalTid);
  b.SetEqI(pred, tid, 0);
  b.ExitIfZero(pred);
  b.LdParam(px, 0);
  b.Ld8F(f, px);
  b.Ld8F(f, px);  // same address: L2 hit
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr px_dev = memory.AllocArray<double>(4);
  const LaunchStats stats =
      RunKernel(kernel, memory, 32, {static_cast<std::int64_t>(px_dev)});
  EXPECT_EQ(stats.dram_bytes, 32u);        // one 32B sector fetched once
  EXPECT_EQ(stats.dram_transactions, 2u);  // but two transactions issued
}

TEST(MemoryModelTest, AtomicsCostMoreThanLoads) {
  auto build = [](bool atomic) {
    KernelBuilder b(atomic ? "atomic" : "plain", 1);
    const int tid = b.R("tid");
    const int pa = b.R("pa");
    const int addr = b.R("addr");
    const int f = b.F("f");
    const int fo = b.F("fo");
    b.S2R(tid, Special::kGlobalTid);
    b.LdParam(pa, 0);
    b.ShlI(addr, tid, 3);
    b.Add(addr, addr, pa);
    b.FMovI(f, 1.0);
    for (int i = 0; i < 16; ++i) {
      if (atomic) {
        b.AtomAddF8(fo, addr, f);
      } else {
        b.Ld8F(fo, addr);
      }
    }
    b.Exit();
    return b.Build();
  };
  std::uint64_t cycles[2];
  for (int variant = 0; variant < 2; ++variant) {
    DeviceMemory memory;
    const DevicePtr pa = memory.AllocArray<double>(1024);
    cycles[variant] = RunKernel(build(variant == 1), memory, 512,
                          {static_cast<std::int64_t>(pa)})
                          .cycles;
  }
  EXPECT_GT(cycles[1], cycles[0]);
}

TEST(MemoryModelTest, LaunchOverheadIncludedPerLaunch) {
  KernelBuilder b("noop", 0);
  b.Exit();
  const Kernel kernel = b.Build();
  DeviceMemory memory;
  const LaunchStats stats = RunKernel(kernel, memory, 32, {});
  EXPECT_GE(stats.cycles, TinyTestDevice().launch_overhead_cycles);
  EXPECT_EQ(stats.launches, 1u);
}

TEST(MemoryModelTest, MaxCyclesWatchdog) {
  // An infinite uniform loop (no divergence, no progress).
  KernelBuilder b("forever", 0);
  Label top = b.NewLabel();
  b.Bind(top);
  const int r = b.R("r");
  b.AddI(r, r, 1);
  b.Jmp(top);
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  DeviceConfig config = TinyTestDevice();
  config.max_cycles = 5'000;
  config.no_progress_cycles = 1'000'000;  // let max_cycles fire first
  Machine machine(config, &memory);
  auto stats = machine.Launch(kernel, {.num_threads = 32,
                                       .threads_per_block = 32},
                              {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlock);
}

}  // namespace
}  // namespace capellini::sim
