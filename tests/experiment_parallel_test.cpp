// Determinism contract of the parallel experiment engine: RunMany fans
// independent runs across a thread pool, but its output must be bit-identical
// to the serial run for every thread count — including runs that end in a
// watchdog deadlock. Plus unit tests for the underlying ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "support/thread_pool.h"

namespace capellini {
namespace {

NamedMatrix SmallNamed(const char* name, Csr matrix) {
  NamedMatrix named;
  named.stats = ComputeStats(matrix, name);
  named.name = name;
  named.matrix = std::move(matrix);
  return named;
}

// A mixed corpus: a parallel-friendly matrix, a level-structured one, and a
// serial chain on which the naive kernel deadlocks — error records must
// round-trip through the pool exactly like successful ones.
std::vector<NamedMatrix> MixedCorpus() {
  std::vector<NamedMatrix> corpus;
  corpus.push_back(SmallNamed(
      "hg", MakeLevelStructured({.num_levels = 3, .components_per_level = 500,
                                 .avg_nnz_per_row = 2.2, .size_jitter = 0.2,
                                 .interleave = false, .seed = 21})));
  corpus.push_back(SmallNamed(
      "mid", MakeLevelStructured({.num_levels = 8, .components_per_level = 60,
                                  .avg_nnz_per_row = 3.0, .size_jitter = 0.2,
                                  .interleave = false, .seed = 30})));
  corpus.push_back(SmallNamed("chain", MakeBidiagonal(64)));
  return corpus;
}

void ExpectSameRecords(const std::vector<RunRecord>& a,
                       const std::vector<RunRecord>& b, int threads) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i) + " threads=" +
                 std::to_string(threads));
    EXPECT_EQ(a[i].matrix, b[i].matrix);
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    if (!a[i].status.ok() && !b[i].status.ok()) {
      EXPECT_EQ(a[i].status.message(), b[i].status.message());
    }
    EXPECT_EQ(a[i].correct, b[i].correct);
    EXPECT_EQ(a[i].max_rel_error, b[i].max_rel_error);
    EXPECT_EQ(a[i].result.stats.cycles, b[i].result.stats.cycles);
    EXPECT_EQ(a[i].result.stats.instructions, b[i].result.stats.instructions);
    EXPECT_EQ(a[i].result.stats.dram_bytes, b[i].result.stats.dram_bytes);
    EXPECT_EQ(a[i].result.exec_ms, b[i].result.exec_ms);
    EXPECT_EQ(a[i].result.gflops, b[i].result.gflops);
    EXPECT_EQ(a[i].result.x, b[i].result.x);
  }
}

TEST(ExperimentParallelTest, RecordsIdenticalForEveryThreadCount) {
  const std::vector<NamedMatrix> corpus = MixedCorpus();
  // kCapelliniNaive deadlocks on the chain (intra-warp dependencies); the
  // other two algorithms solve everything. The engine must preserve both
  // kinds of record in input order.
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
      kernels::DeviceAlgorithm::kCapelliniNaive,
  };
  sim::DeviceConfig config = sim::TinyTestDevice();
  config.no_progress_cycles = 30'000;  // trip the watchdog quickly

  ExperimentOptions options;
  options.threads = 1;
  const auto serial = RunMany(corpus, algorithms, config, options);
  ASSERT_EQ(serial.size(), corpus.size() * algorithms.size());

  bool saw_deadlock = false;
  for (const RunRecord& record : serial) {
    if (record.status.code() == StatusCode::kDeadlock) saw_deadlock = true;
  }
  EXPECT_TRUE(saw_deadlock) << "corpus no longer exercises the error path";

  for (const int threads : {2, 8}) {
    options.threads = threads;
    const auto parallel = RunMany(corpus, algorithms, config, options);
    ExpectSameRecords(serial, parallel, threads);
  }
}

TEST(ExperimentParallelTest, ThreadsZeroMeansHardwareConcurrency) {
  const std::vector<NamedMatrix> corpus = MixedCorpus();
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };
  ExperimentOptions options;
  options.threads = 1;
  const auto serial = RunMany(corpus, algorithms, sim::TinyTestDevice(),
                              options);
  options.threads = 0;
  const auto automatic = RunMany(corpus, algorithms, sim::TinyTestDevice(),
                                 options);
  ExpectSameRecords(serial, automatic, 0);
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ResultsArriveInSubmissionOrder) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be usable.
  auto after = pool.Submit([] { return 11; });
  EXPECT_EQ(after.get(), 11);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&completed] { ++completed; });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPoolTest, ZeroTasksAndClampedThreadCount) {
  ThreadPool pool(0);  // clamped to one worker
  EXPECT_EQ(pool.num_threads(), 1);
  // Destruction with an empty queue must not hang.
}

}  // namespace
}  // namespace capellini
