#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/cli.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/table.h"
#include "support/timer.h"

namespace capellini {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgument("bad row");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "invalid_argument: bad row");
}

// Exhaustive by construction: the switch has no default, so adding a
// StatusCode without extending this list is a -Wswitch error under the CI's
// -Werror build, and StatusCodeName coverage can never silently lag.
const char* RoundTripStatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kDeadlock:
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
      return StatusCodeName(code);
  }
  return "unhandled";
}

TEST(StatusTest, AllCodesHaveNames) {
  std::set<std::string> names;
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kDeadlock, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kDataLoss}) {
    const char* name = RoundTripStatusCodeName(code);
    EXPECT_STRNE(name, "unknown");
    EXPECT_STRNE(name, "unhandled");
    names.insert(name);  // also distinct: no two codes share a name
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(StatusTest, DataLossHelper) {
  const Status status = DataLoss("corrupted solution");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.ToString(), "data_loss: corrupted solution");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> expected(42);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*expected, 42);
  EXPECT_TRUE(expected.status().ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> expected(NotFound("nope"));
  ASSERT_FALSE(expected.ok());
  EXPECT_EQ(expected.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GeometricMeanApproximatelyCorrect) {
  Rng rng(13);
  const double target = 5.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPositiveWithMean(target));
  }
  EXPECT_NEAR(sum / n, target, 0.2);
}

TEST(RngTest, GeometricMeanBelowOneClampsToOne) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPositiveWithMean(0.5), 1);
}

TEST(RngTest, SampleDistinctSortedProperties) {
  Rng rng(17);
  for (const std::int64_t k : {0, 1, 5, 50, 100}) {
    const auto sample = rng.SampleDistinctSorted(10, 109, k);
    ASSERT_EQ(sample.size(), static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < sample.size(); ++i) {
      EXPECT_GE(sample[i], 10);
      EXPECT_LE(sample[i], 109);
      if (i > 0) {
        EXPECT_LT(sample[i - 1], sample[i]);
      }
    }
  }
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng(19);
  const auto sample = rng.SampleDistinctSorted(0, 9, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
}

TEST(CliTest, ParsesAllKinds) {
  CliFlags flags;
  std::int64_t n = 5;
  double x = 1.5;
  bool verbose = false;
  std::string name = "default";
  flags.AddInt("n", &n, "count");
  flags.AddDouble("x", &x, "factor");
  flags.AddBool("verbose", &verbose, "chatty");
  flags.AddString("name", &name, "label");

  const char* argv[] = {"prog", "--n=42", "--x", "2.25", "--verbose",
                        "--name=corpus"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "corpus");
}

TEST(CliTest, RejectsUnknownFlag) {
  CliFlags flags;
  const char* argv[] = {"prog", "--bogus=1"};
  const Status status = flags.Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CliTest, RejectsBadInteger) {
  CliFlags flags;
  std::int64_t n = 0;
  flags.AddInt("n", &n, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CliTest, HelpReturnsNotFound) {
  CliFlags flags;
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, NumAndIntFormat) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Int(1234567), "1,234,567");
  EXPECT_EQ(TextTable::Int(-1000), "-1,000");
  EXPECT_EQ(TextTable::Int(7), "7");
}

TEST(CliTest, UsageListsFlagsWithDefaults) {
  CliFlags flags;
  std::int64_t n = 5;
  bool verbose = true;
  flags.AddInt("n", &n, "count of things");
  flags.AddBool("verbose", &verbose, "chatty");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("count of things"), std::string::npos);
  EXPECT_NE(usage.find("default 5"), std::string::npos);
  EXPECT_NE(usage.find("default true"), std::string::npos);
}

TEST(CliTest, ExplicitFalseBool) {
  CliFlags flags;
  bool verbose = true;
  flags.AddBool("verbose", &verbose, "chatty");
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(verbose);
}

TEST(CliTest, TrailingFlagWithoutValueFails) {
  CliFlags flags;
  std::int64_t n = 0;
  flags.AddInt("n", &n, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedMs(), 0.0);
  EXPECT_GE(timer.ElapsedSec(), 0.0);
}

}  // namespace
}  // namespace capellini
