#include <gtest/gtest.h>

#include <vector>

#include "sim/config.h"
#include "sim/kernel.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace capellini::sim {
namespace {

/// Runs `kernel` on a tiny device and returns the stats (asserting success).
LaunchStats MustLaunch(const Kernel& kernel, DeviceMemory& memory,
                       std::int64_t num_threads,
                       std::vector<std::int64_t> params,
                       DeviceConfig config = TinyTestDevice()) {
  Machine machine(config, &memory);
  auto stats = machine.Launch(kernel, {.num_threads = num_threads,
                                       .threads_per_block = 64},
                              params);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? *stats : LaunchStats{};
}

TEST(DeviceMemoryTest, AllocAlignsAndGrows) {
  DeviceMemory memory;
  const DevicePtr a = memory.Alloc(10, 256);
  const DevicePtr b = memory.Alloc(10, 256);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
}

TEST(DeviceMemoryTest, CopyRoundTrip) {
  DeviceMemory memory;
  const std::vector<double> data = {1.5, -2.5, 3.25};
  const DevicePtr ptr = memory.AllocArray<double>(3);
  memory.CopyToDevice(ptr, std::span<const double>(data));
  std::vector<double> back(3);
  memory.CopyFromDevice(std::span<double>(back), ptr);
  EXPECT_EQ(back, data);
  EXPECT_DOUBLE_EQ(memory.LoadF64(ptr + 8), -2.5);
}

TEST(DeviceMemoryTest, ScalarAccessors) {
  DeviceMemory memory;
  const DevicePtr ptr = memory.Alloc(64);
  memory.StoreI32(ptr, -7);
  EXPECT_EQ(memory.LoadI32(ptr), -7);
  memory.StoreI64(ptr + 8, 1ll << 40);
  EXPECT_EQ(memory.LoadI64(ptr + 8), 1ll << 40);
  memory.StoreF64(ptr + 16, 2.75);
  EXPECT_DOUBLE_EQ(memory.LoadF64(ptr + 16), 2.75);
  memory.Fill(ptr, 4, 0xFF);
  EXPECT_EQ(memory.LoadI32(ptr), -1);
}

TEST(KernelBuilderTest, NamedRegistersAreStable) {
  KernelBuilder b("regs", 0);
  const int r1 = b.R("alpha");
  const int r2 = b.R("beta");
  EXPECT_NE(r1, r2);
  EXPECT_EQ(b.R("alpha"), r1);
  EXPECT_EQ(b.F("x"), b.F("x"));
}

TEST(KernelBuilderTest, BuildsValidProgram) {
  KernelBuilder b("ok", 0);
  b.MovI(b.R("r"), 1);
  b.Exit();
  const Kernel kernel = b.Build();
  EXPECT_TRUE(kernel.Validate().ok());
  EXPECT_EQ(kernel.code.size(), 2u);
}

TEST(KernelValidateTest, CatchesMissingTerminator) {
  Kernel kernel;
  kernel.name = "bad";
  kernel.code = {Instr{Op::kMovI, 0, 0, 0, 1, 0, 0.0}};
  EXPECT_FALSE(kernel.Validate().ok());
}

TEST(KernelValidateTest, CatchesBadBranchTarget) {
  Kernel kernel;
  kernel.name = "bad";
  kernel.code = {Instr{Op::kBrnz, 0, 0, 0, 99, 0, 0.0},
                 Instr{Op::kExit, 0, 0, 0, 0, 0, 0.0}};
  EXPECT_FALSE(kernel.Validate().ok());
}

/// y[tid] = 3 * x[tid] + 1 for tid < n.
Kernel AxpbKernel() {
  KernelBuilder b("axpb", 3);
  const int tid = b.R("tid");
  const int n = b.R("n");
  const int px = b.R("px");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int fx = b.F("x");
  const int fa = b.F("a");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(n, 0);
  b.SetLt(pred, tid, n);
  b.ExitIfZero(pred);
  b.LdParam(px, 1);
  b.LdParam(py, 2);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, px);
  b.Ld8F(fx, addr);
  b.FMovI(fa, 3.0);
  b.FMul(fx, fx, fa);
  b.FMovI(fa, 1.0);
  b.FAdd(fx, fx, fa);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8F(addr, fx);
  b.Exit();
  return b.Build();
}

TEST(MachineTest, ElementwiseKernelComputesCorrectly) {
  const Kernel kernel = AxpbKernel();
  DeviceMemory memory;
  const std::int64_t n = 1000;
  std::vector<double> x(n);
  for (std::int64_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i * 0.5;
  const DevicePtr px = memory.AllocArray<double>(n);
  const DevicePtr py = memory.AllocArray<double>(n);
  memory.CopyToDevice(px, std::span<const double>(x));

  const LaunchStats stats = MustLaunch(kernel, memory, n,
                                       {n, static_cast<std::int64_t>(px),
                                        static_cast<std::int64_t>(py)});
  std::vector<double> y(n);
  memory.CopyFromDevice(std::span<double>(y), py);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], 3.0 * (i * 0.5) + 1.0);
  }
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_GT(stats.dram_bytes, 0u);
  EXPECT_EQ(stats.launches, 1u);
}

TEST(MachineTest, GuardExitHandlesPartialWarps) {
  const Kernel kernel = AxpbKernel();
  DeviceMemory memory;
  const std::int64_t n = 37;  // not a multiple of 32
  std::vector<double> x(64, 2.0);
  const DevicePtr px = memory.AllocArray<double>(64);
  const DevicePtr py = memory.AllocArray<double>(64);
  memory.CopyToDevice(px, std::span<const double>(x));
  memory.Fill(py, 64 * 8, 0);

  MustLaunch(kernel, memory, 64,
             {n, static_cast<std::int64_t>(px), static_cast<std::int64_t>(py)});
  std::vector<double> y(64);
  memory.CopyFromDevice(std::span<double>(y), py);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], i < n ? 7.0 : 0.0) << i;
  }
}

TEST(MachineTest, DeterministicCycleCounts) {
  const Kernel kernel = AxpbKernel();
  std::uint64_t cycles[2];
  for (int run = 0; run < 2; ++run) {
    DeviceMemory memory;
    std::vector<double> x(512, 1.0);
    const DevicePtr px = memory.AllocArray<double>(512);
    const DevicePtr py = memory.AllocArray<double>(512);
    memory.CopyToDevice(px, std::span<const double>(x));
    cycles[run] = MustLaunch(kernel, memory, 512,
                             {512, static_cast<std::int64_t>(px),
                              static_cast<std::int64_t>(py)})
                      .cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

/// Divergence: odd lanes write 1.0, even lanes write 2.0, then ALL lanes add
/// 10 after the reconvergence point.
TEST(MachineTest, DivergentBranchesReconverge) {
  KernelBuilder b("diverge", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int fv = b.F("v");
  const int ften = b.F("ten");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(py, 0);
  b.AndI(pred, tid, 1);
  Label odd = b.NewLabel();
  Label join = b.NewLabel();
  b.Brnz(pred, odd, join);
  b.FMovI(fv, 2.0);  // even path
  b.Jmp(join);
  b.Bind(odd);
  b.FMovI(fv, 1.0);  // odd path
  b.Bind(join);      // reconvergence: all lanes together again
  b.FMovI(ften, 10.0);
  b.FAdd(fv, fv, ften);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8F(addr, fv);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<double>(64);
  MustLaunch(kernel, memory, 64, {static_cast<std::int64_t>(py_dev)});
  std::vector<double> y(64);
  memory.CopyFromDevice(std::span<double>(y), py_dev);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], i % 2 ? 11.0 : 12.0);
  }
}

/// Variable trip count loop: y[tid] = tid * (tid+1) / 2 via repeated adds.
TEST(MachineTest, VariableTripCountLoops) {
  KernelBuilder b("tri", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int k = b.R("k");
  const int acc = b.R("acc");
  const int pred = b.R("pred");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(py, 0);
  b.MovI(acc, 0);
  b.MovI(k, 0);
  Label loop = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(loop);
  b.SetLe(pred, k, tid);
  b.Brz(pred, done, done);
  b.Add(acc, acc, k);
  b.AddI(k, k, 1);
  b.Jmp(loop);
  b.Bind(done);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, py);
  b.St8I(addr, acc);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<std::int64_t>(96);
  MustLaunch(kernel, memory, 96, {static_cast<std::int64_t>(py_dev)});
  std::vector<std::int64_t> y(96);
  memory.CopyFromDevice(std::span<std::int64_t>(y), py_dev);
  for (std::int64_t i = 0; i < 96; ++i) {
    EXPECT_EQ(y[static_cast<std::size_t>(i)], i * (i + 1) / 2) << i;
  }
}

/// Warp shuffle reduction: every lane ends with the warp total.
TEST(MachineTest, ShuffleReduction) {
  KernelBuilder b("reduce", 1);
  const int tid = b.R("tid");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int lane = b.R("lane");
  const int pred = b.R("pred");
  const int fv = b.F("v");
  const int ft = b.F("t");
  b.S2R(tid, Special::kGlobalTid);
  b.S2R(lane, Special::kLane);
  b.LdParam(py, 0);
  // v = lane; after reduction lane 0 holds sum 0..31 = 496.
  b.FMovI(fv, 0.0);
  Label skip = b.NewLabel();
  b.Brz(lane, skip, skip);
  // add lane as float by repeated increments is clumsy; instead store lane
  // into memory and reload as double? Simpler: use FMovI(1)*lane via loop.
  b.Bind(skip);
  // Set v directly with an integer->float trick: v = lane via FFma on a
  // preloaded table is overkill; instead test with constant 1.0 per lane.
  b.FMovI(fv, 1.0);
  for (int delta = 16; delta >= 1; delta /= 2) {
    b.ShflDownF(ft, fv, delta);
    b.FAdd(fv, fv, ft);
  }
  b.SetNeI(pred, lane, 0);
  Label fin = b.NewLabel();
  b.Brnz(pred, fin, fin);
  b.ShrI(addr, tid, 5);
  b.ShlI(addr, addr, 3);
  b.Add(addr, addr, py);
  b.St8F(addr, fv);
  b.Bind(fin);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr py_dev = memory.AllocArray<double>(4);
  MustLaunch(kernel, memory, 128, {static_cast<std::int64_t>(py_dev)});
  std::vector<double> y(4);
  memory.CopyFromDevice(std::span<double>(y), py_dev);
  for (int w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(w)], 32.0) << "warp " << w;
  }
}

/// Atomic adds from many threads to one address accumulate exactly.
TEST(MachineTest, AtomicAddAccumulates) {
  KernelBuilder b("atom", 1);
  const int tid = b.R("tid");
  const int pa = b.R("pa");
  const int fold = b.F("old");
  const int fone = b.F("one");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(pa, 0);
  b.FMovI(fone, 1.0);
  b.AtomAddF8(fold, pa, fone);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr pa_dev = memory.AllocArray<double>(1);
  memory.StoreF64(pa_dev, 0.0);
  MustLaunch(kernel, memory, 320, {static_cast<std::int64_t>(pa_dev)});
  EXPECT_DOUBLE_EQ(memory.LoadF64(pa_dev), 320.0);
}

/// Cross-warp producer/consumer: consumers spin on a flag a producer warp
/// sets. In-order dispatch guarantees completion.
TEST(MachineTest, CrossWarpSpinCompletes) {
  KernelBuilder b("producer_consumer", 2);
  const int tid = b.R("tid");
  const int pflag = b.R("pflag");
  const int py = b.R("py");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(pflag, 0);
  b.LdParam(py, 1);
  b.SetEqI(pred, tid, 0);
  Label consumer = b.NewLabel();
  b.Brz(pred, consumer, consumer);
  // Thread 0: do some work, then set the flag.
  b.MovI(one, 1);
  b.St4(pflag, one);
  b.Exit();
  b.Bind(consumer);
  Label spin = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(spin);
  b.Ld4(g, pflag);
  b.Brnz(g, done, done);
  b.Jmp(spin);
  b.Bind(done);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, py);
  b.St4(addr, g);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr flag = memory.AllocArray<std::int32_t>(1);
  const DevicePtr py_dev = memory.AllocArray<std::int32_t>(256);
  memory.StoreI32(flag, 0);
  MustLaunch(kernel, memory, 256,
             {static_cast<std::int64_t>(flag), static_cast<std::int64_t>(py_dev)});
  // Every consumer observed the flag.
  for (int i = 1; i < 256; ++i) {
    EXPECT_EQ(memory.LoadI32(py_dev + 4u * static_cast<std::uint64_t>(i)), 1)
        << i;
  }
}

/// Intra-warp circular wait: lane 0 waits on lane 1's flag and vice versa.
/// Lock-step execution can never satisfy both — the watchdog must fire.
TEST(MachineTest, IntraWarpDeadlockDetected) {
  KernelBuilder b("deadlock", 1);
  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int pflag = b.R("pflag");
  const int addr = b.R("addr");
  const int other = b.R("other");
  const int g = b.R("g");
  const int one = b.R("one");
  const int pred = b.R("pred");
  b.S2R(tid, Special::kGlobalTid);
  b.S2R(lane, Special::kLane);
  b.LdParam(pflag, 0);
  b.SetGeI(pred, lane, 2);
  Label work = b.NewLabel();
  b.Brz(pred, work, work);
  b.Exit();  // lanes >= 2 leave
  b.Bind(work);
  // other = 1 - lane; wait flag[other], then set flag[lane].
  b.MovI(other, 1);
  b.Sub(other, other, lane);
  b.ShlI(addr, other, 2);
  b.Add(addr, addr, pflag);
  Label spin = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(spin);
  b.Ld4(g, addr);
  b.Brnz(g, done, done);
  b.Jmp(spin);
  b.Bind(done);
  b.MovI(one, 1);
  b.ShlI(addr, lane, 2);
  b.Add(addr, addr, pflag);
  b.St4(addr, one);
  b.Exit();
  const Kernel kernel = b.Build();

  DeviceMemory memory;
  const DevicePtr flags = memory.AllocArray<std::int32_t>(2);
  memory.Fill(flags, 8, 0);
  DeviceConfig config = TinyTestDevice();
  config.no_progress_cycles = 20'000;
  Machine machine(config, &memory);
  auto stats = machine.Launch(kernel, {.num_threads = 32,
                                       .threads_per_block = 32},
                              std::vector<std::int64_t>{
                                  static_cast<std::int64_t>(flags)});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlock);
}

/// Coalescing: a strided access pattern produces more DRAM transactions than
/// a unit-stride one.
TEST(MachineTest, CoalescingReducesTransactions) {
  auto build = [](int stride) {
    KernelBuilder b(stride == 1 ? "coalesced" : "strided", 1);
    const int tid = b.R("tid");
    const int px = b.R("px");
    const int addr = b.R("addr");
    const int fv = b.F("v");
    b.S2R(tid, Special::kGlobalTid);
    b.LdParam(px, 0);
    b.MulI(addr, tid, stride * 8);
    b.Add(addr, addr, px);
    b.Ld8F(fv, addr);
    b.Exit();
    return b.Build();
  };

  std::uint64_t transactions[2];
  int idx = 0;
  for (const int stride : {1, 8}) {
    DeviceMemory memory;
    const DevicePtr px = memory.AllocArray<double>(32 * 8);
    transactions[idx++] =
        MustLaunch(build(stride), memory, 32,
                   {static_cast<std::int64_t>(px)})
            .dram_transactions;
  }
  EXPECT_GT(transactions[1], transactions[0] * 2);
}

TEST(MachineTest, LaunchValidation) {
  const Kernel kernel = AxpbKernel();
  DeviceMemory memory;
  Machine machine(TinyTestDevice(), &memory);
  // Wrong parameter count.
  auto r1 = machine.Launch(kernel, {.num_threads = 32, .threads_per_block = 32},
                           std::vector<std::int64_t>{1, 2});
  EXPECT_FALSE(r1.ok());
  // Bad block size.
  auto r2 = machine.Launch(kernel, {.num_threads = 32, .threads_per_block = 33},
                           std::vector<std::int64_t>{1, 2, 3});
  EXPECT_FALSE(r2.ok());
  // No threads.
  auto r3 = machine.Launch(kernel, {.num_threads = 0, .threads_per_block = 32},
                           std::vector<std::int64_t>{1, 2, 3});
  EXPECT_FALSE(r3.ok());
}

TEST(MachineTest, StallAccountingWithinBounds) {
  const Kernel kernel = AxpbKernel();
  DeviceMemory memory;
  std::vector<double> x(2048, 1.0);
  const DevicePtr px = memory.AllocArray<double>(2048);
  const DevicePtr py = memory.AllocArray<double>(2048);
  memory.CopyToDevice(px, std::span<const double>(x));
  const LaunchStats stats =
      MustLaunch(kernel, memory, 2048,
                 {2048, static_cast<std::int64_t>(px),
                  static_cast<std::int64_t>(py)});
  EXPECT_GE(stats.StallPct(), 0.0);
  EXPECT_LE(stats.StallPct(), 100.0);
  EXPECT_EQ(stats.issue_used + stats.stall_slots, stats.issue_slots);
  EXPECT_GE(stats.AvgActiveLanes(), 1.0);
  EXPECT_LE(stats.AvgActiveLanes(), 32.0);
}

TEST(CountersTest, StatsAccumulate) {
  LaunchStats a;
  a.cycles = 100;
  a.instructions = 10;
  a.lane_instructions = 320;
  a.dram_bytes = 64;
  a.issue_slots = 200;
  a.issue_used = 150;
  a.stall_slots = 50;
  a.launches = 1;
  LaunchStats b = a;
  const LaunchStats sum = a + b;
  EXPECT_EQ(sum.cycles, 200u);
  EXPECT_EQ(sum.instructions, 20u);
  EXPECT_EQ(sum.launches, 2u);
  EXPECT_DOUBLE_EQ(sum.AvgActiveLanes(), 32.0);
  EXPECT_DOUBLE_EQ(sum.StallPct(), 25.0);

  const LaunchStats empty;
  EXPECT_DOUBLE_EQ(empty.StallPct(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgActiveLanes(), 0.0);
}

TEST(CountersTest, RatioMetricsGuardZeroDenominators) {
  // A launch that never had resident work (issue_slots == 0) or never issued
  // (instructions == 0) must report 0, not NaN, so tables format cleanly.
  LaunchStats stats;
  stats.stall_slots = 7;        // nonsense without issue_slots, still no NaN
  stats.lane_instructions = 64;  // likewise without instructions
  EXPECT_DOUBLE_EQ(stats.StallPct(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgActiveLanes(), 0.0);

  stats.issue_slots = 400;
  stats.instructions = 4;
  EXPECT_DOUBLE_EQ(stats.StallPct(), 1.75);
  EXPECT_DOUBLE_EQ(stats.AvgActiveLanes(), 16.0);
}

TEST(CountersTest, PlusEqualsAccumulatesEveryField) {
  LaunchStats a;
  a.cycles = 1;
  a.instructions = 2;
  a.lane_instructions = 3;
  a.dram_bytes = 4;
  a.dram_transactions = 5;
  a.issue_slots = 6;
  a.issue_used = 7;
  a.stall_slots = 8;
  a.launches = 9;
  LaunchStats b;
  b.cycles = 10;
  b.instructions = 20;
  b.lane_instructions = 30;
  b.dram_bytes = 40;
  b.dram_transactions = 50;
  b.issue_slots = 60;
  b.issue_used = 70;
  b.stall_slots = 80;
  b.launches = 90;
  a += b;
  EXPECT_EQ(a.cycles, 11u);
  EXPECT_EQ(a.instructions, 22u);
  EXPECT_EQ(a.lane_instructions, 33u);
  EXPECT_EQ(a.dram_bytes, 44u);
  EXPECT_EQ(a.dram_transactions, 55u);
  EXPECT_EQ(a.issue_slots, 66u);
  EXPECT_EQ(a.issue_used, 77u);
  EXPECT_EQ(a.stall_slots, 88u);
  EXPECT_EQ(a.launches, 99u);
  // b is untouched by the copy-based operator+.
  const LaunchStats sum = b + LaunchStats{};
  EXPECT_EQ(sum.cycles, b.cycles);
}

TEST(ConfigTest, PaperPlatformsMatchTable3) {
  const auto platforms = PaperPlatforms();
  ASSERT_EQ(platforms.size(), 3u);
  EXPECT_EQ(platforms[0].name, "Pascal");
  EXPECT_EQ(platforms[1].name, "Volta");
  EXPECT_EQ(platforms[2].name, "Turing");
  // Volta has the most SMs and the highest bandwidth of the three.
  EXPECT_GT(platforms[1].num_sms, platforms[0].num_sms);
  EXPECT_GT(platforms[1].dram_bandwidth_gbps, platforms[2].dram_bandwidth_gbps);
}

TEST(ConfigTest, UnitConversions) {
  DeviceConfig config;
  config.clock_ghz = 2.0;
  config.dram_bandwidth_gbps = 400.0;
  EXPECT_DOUBLE_EQ(config.BytesPerCycle(), 200.0);
  EXPECT_DOUBLE_EQ(config.CyclesToMs(2'000'000), 1.0);
}

}  // namespace
}  // namespace capellini::sim
