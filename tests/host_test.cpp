#include <gtest/gtest.h>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "host/levelset_cpu.h"
#include "host/serial.h"
#include "host/syncfree_cpu.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"

namespace capellini::host {
namespace {

TEST(SerialTest, SolvesKnownSystem) {
  // L = [[2,0],[1,4]]; b = [2, 9] -> x = [1, 2].
  Coo coo(2, 2);
  coo.Add(0, 0, 2.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 4.0);
  const Csr lower = CooToCsr(std::move(coo));
  const std::vector<Val> b = {2.0, 9.0};
  std::vector<Val> x(2);
  ASSERT_TRUE(SolveSerial(lower, b, x).ok());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(SerialTest, RejectsBadInputs) {
  const Csr lower = MakeDiagonal(3);
  std::vector<Val> x(3);
  const std::vector<Val> short_b = {1.0};
  EXPECT_FALSE(SolveSerial(lower, short_b, x).ok());

  Coo coo(2, 2);
  coo.Add(0, 0, 1.0);  // row 1 has no diagonal
  coo.Add(1, 0, 1.0);
  const Csr bad = CooToCsr(std::move(coo));
  const std::vector<Val> b = {1.0, 1.0};
  std::vector<Val> x2(2);
  EXPECT_FALSE(SolveSerial(bad, b, x2).ok());
}

TEST(SerialTest, RecoversReferenceSolution) {
  const Csr lower = MakeRandomLower({.rows = 3000,
                                     .avg_strict_nnz_per_row = 4.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.1,
                                     .seed = 11});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 12);
  std::vector<Val> x(problem.b.size());
  ASSERT_TRUE(SolveSerial(lower, problem.b, x).ok());
  EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-11);
}

class HostParallelSolvers : public ::testing::TestWithParam<int> {};

TEST_P(HostParallelSolvers, LevelSetMatchesSerial) {
  const int threads = GetParam();
  const Csr lower = MakeLevelStructured({.num_levels = 10,
                                         .components_per_level = 300,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.3,
                                         .interleave = false,
                                         .seed = 13});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 14);
  std::vector<Val> x(problem.b.size());
  LevelSetCpuOptions options;
  options.num_threads = threads;
  options.min_parallel_level_size = 64;
  ASSERT_TRUE(SolveLevelSetCpu(lower, problem.b, x, nullptr, options).ok());
  EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-11);
}

TEST_P(HostParallelSolvers, SyncFreeMatchesSerial) {
  const int threads = GetParam();
  const Csr lower = MakeBanded({.rows = 2000, .bandwidth = 8, .fill = 0.8,
                                .force_chain = true, .seed = 15});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 16);
  std::vector<Val> x(problem.b.size());
  SyncFreeCpuOptions options;
  options.num_threads = threads;
  ASSERT_TRUE(SolveSyncFreeCpu(lower, problem.b, x, options).ok());
  EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, HostParallelSolvers,
                         ::testing::Values(1, 2, 4));

TEST(LevelSetCpuTest, AcceptsPrecomputedLevels) {
  const Csr lower = MakeBidiagonal(500);
  const LevelSets levels = ComputeLevelSets(lower);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 17);
  std::vector<Val> x(problem.b.size());
  ASSERT_TRUE(SolveLevelSetCpu(lower, problem.b, x, &levels).ok());
  EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-11);
}

TEST(SyncFreeCpuTest, ChainIsWorstCaseButCorrect) {
  // Fully serial dependency chain: every row waits on the previous one.
  const Csr lower = MakeBidiagonal(1000);
  const ReferenceProblem problem = MakeReferenceProblem(lower, 18);
  std::vector<Val> x(problem.b.size());
  SyncFreeCpuOptions options;
  options.num_threads = 3;
  ASSERT_TRUE(SolveSyncFreeCpu(lower, problem.b, x, options).ok());
  EXPECT_LE(MaxRelativeError(x, problem.x_true), 1e-11);
}

}  // namespace
}  // namespace capellini::host
