#include <gtest/gtest.h>

#include <cmath>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "graph/dag.h"
#include "graph/levels.h"
#include "graph/stats.h"
#include "matrix/convert.h"

namespace capellini {
namespace {

Csr Figure1Matrix() {
  Coo coo(8, 8);
  for (Idx i = 0; i < 8; ++i) coo.Add(i, i, 1.0);
  coo.Add(2, 1, 0.5);
  coo.Add(3, 1, -0.25);
  coo.Add(4, 0, 0.125);
  coo.Add(4, 1, 0.25);
  coo.Add(5, 2, -0.5);
  coo.Add(6, 5, 0.375);
  return CooToCsr(std::move(coo));
}

TEST(LevelsTest, Figure1HasFourLevels) {
  const LevelSets levels = ComputeLevelSets(Figure1Matrix());
  EXPECT_EQ(levels.num_levels(), 4);
  EXPECT_EQ(levels.level_of[0], 0);
  EXPECT_EQ(levels.level_of[1], 0);
  EXPECT_EQ(levels.level_of[2], 1);
  EXPECT_EQ(levels.level_of[3], 1);
  EXPECT_EQ(levels.level_of[4], 1);
  EXPECT_EQ(levels.level_of[5], 2);
  EXPECT_EQ(levels.level_of[6], 3);
  EXPECT_EQ(levels.level_of[7], 0);
  EXPECT_EQ(levels.LevelSize(0), 3);
  EXPECT_EQ(levels.LevelSize(1), 3);
  EXPECT_EQ(levels.LevelSize(2), 1);
  EXPECT_EQ(levels.LevelSize(3), 1);
}

TEST(LevelsTest, OrderPartitionsAllRows) {
  const Csr matrix = MakeRandomLower({.rows = 500, .avg_strict_nnz_per_row = 3.0,
                                      .window = 0, .empty_row_fraction = 0.1,
                                      .seed = 5});
  const LevelSets levels = ComputeLevelSets(matrix);
  std::vector<bool> seen(500, false);
  for (const Idx row : levels.order) {
    ASSERT_GE(row, 0);
    ASSERT_LT(row, 500);
    EXPECT_FALSE(seen[static_cast<std::size_t>(row)]);
    seen[static_cast<std::size_t>(row)] = true;
  }
  // Rows inside each level keep ascending order (stable counting sort).
  for (Idx level = 0; level < levels.num_levels(); ++level) {
    const auto rows = levels.LevelRows(level);
    for (std::size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LT(rows[i - 1], rows[i]);
    }
  }
}

TEST(LevelsTest, ChainMatrixHasOneRowPerLevel) {
  const Csr chain = MakeBidiagonal(64);
  const LevelSets levels = ComputeLevelSets(chain);
  EXPECT_EQ(levels.num_levels(), 64);
  for (Idx k = 0; k < 64; ++k) EXPECT_EQ(levels.LevelSize(k), 1);
}

TEST(LevelsTest, DiagonalMatrixHasOneLevel) {
  const Csr diag = MakeDiagonal(100);
  const LevelSets levels = ComputeLevelSets(diag);
  EXPECT_EQ(levels.num_levels(), 1);
  EXPECT_EQ(levels.LevelSize(0), 100);
}

TEST(DagTest, Figure1Structure) {
  const DependencyDag dag(Figure1Matrix());
  EXPECT_EQ(dag.num_nodes(), 8);
  EXPECT_EQ(dag.num_edges(), 6);
  EXPECT_EQ(dag.InDegree(4), 2);
  EXPECT_EQ(dag.InDegree(0), 0);
  const auto succ1 = dag.Successors(1);
  EXPECT_EQ(succ1.size(), 3u);  // rows 2, 3, 4 consume x1
  EXPECT_EQ(dag.CriticalPathLength(), 4);
}

TEST(DagTest, CriticalPathEqualsLevelCount) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Csr matrix = MakeRandomLower({.rows = 300,
                                        .avg_strict_nnz_per_row = 2.5,
                                        .window = 40,
                                        .empty_row_fraction = 0.2,
                                        .seed = seed});
    const DependencyDag dag(matrix);
    const LevelSets levels = ComputeLevelSets(matrix);
    EXPECT_EQ(dag.CriticalPathLength(), levels.num_levels());
  }
}

TEST(DagTest, LevelOrderIsTopological) {
  const Csr matrix = MakeLevelStructured({.num_levels = 12,
                                          .components_per_level = 40,
                                          .avg_nnz_per_row = 3.0,
                                          .size_jitter = 0.4,
                                          .interleave = false,
                                          .seed = 77});
  const DependencyDag dag(matrix);
  const LevelSets levels = ComputeLevelSets(matrix);
  EXPECT_TRUE(dag.IsTopologicalOrder(levels.order));
}

TEST(DagTest, RejectsBrokenOrders) {
  const DependencyDag dag(Figure1Matrix());
  // Too short.
  const std::vector<Idx> short_order = {0, 1, 2};
  EXPECT_FALSE(dag.IsTopologicalOrder(short_order));
  // Duplicate entries.
  const std::vector<Idx> dup = {0, 0, 1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(dag.IsTopologicalOrder(dup));
  // Consumer before producer (6 depends on 5).
  const std::vector<Idx> wrong = {0, 1, 2, 3, 4, 6, 5, 7};
  EXPECT_FALSE(dag.IsTopologicalOrder(wrong));
}

// --- Equation 1 (parallel granularity) -------------------------------------

TEST(StatsTest, MatchesPaperTable6Indicators) {
  // Table 6 reports delta for (alpha, beta) triples; Equation 1 with the
  // default bases/biases must reproduce them.
  // Tolerance 0.02: the paper prints delta/alpha/beta rounded to 2 decimals.
  EXPECT_NEAR(ParallelGranularity(14636.23, 4.89), 0.78, 0.02);  // rajat29
  EXPECT_NEAR(ParallelGranularity(9622.50, 3.39), 0.87, 0.02);   // bayer01
  EXPECT_NEAR(ParallelGranularity(12812.06, 3.02), 0.92, 0.02);  // circuit5M_dc
}

TEST(StatsTest, GranularityMonotonicity) {
  // More components per level -> higher granularity.
  EXPECT_LT(ParallelGranularity(100, 4.0), ParallelGranularity(10000, 4.0));
  // More nonzeros per row -> lower granularity.
  EXPECT_GT(ParallelGranularity(1000, 2.0), ParallelGranularity(1000, 16.0));
}

TEST(StatsTest, CustomParams) {
  GranularityParams params;
  params.base1 = 2.0;
  const double base10 = ParallelGranularity(1000, 4.0);
  const double base2 = ParallelGranularity(1000, 4.0, params);
  // Same ratio, different outer base: log2(x) = log10(x)/log10(2).
  EXPECT_NEAR(base2, base10 / std::log10(2.0), 1e-9);
}

TEST(StatsTest, ComputeStatsOnFigure1) {
  const MatrixStats stats = ComputeStats(Figure1Matrix(), "fig1");
  EXPECT_EQ(stats.rows, 8);
  EXPECT_EQ(stats.nnz, 14);
  EXPECT_EQ(stats.num_levels, 4);
  EXPECT_DOUBLE_EQ(stats.avg_components_per_level, 2.0);
  EXPECT_NEAR(stats.avg_nnz_per_row, 14.0 / 8.0, 1e-12);
  EXPECT_EQ(stats.max_level_size, 3);
  EXPECT_EQ(stats.name, "fig1");
}

TEST(StatsTest, ReusesPrecomputedLevels) {
  const Csr matrix = Figure1Matrix();
  const LevelSets levels = ComputeLevelSets(matrix);
  const MatrixStats a = ComputeStats(matrix, "m", &levels);
  const MatrixStats b = ComputeStats(matrix, "m");
  EXPECT_EQ(a.num_levels, b.num_levels);
  EXPECT_DOUBLE_EQ(a.parallel_granularity, b.parallel_granularity);
}

}  // namespace
}  // namespace capellini
