#include <gtest/gtest.h>

#include <set>

#include "core/analysis.h"
#include "core/experiment.h"
#include "core/select.h"
#include "core/solver.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "matrix/triangular.h"

namespace capellini {
namespace {

Csr HighGranularityMatrix() {
  return MakeLevelStructured({.num_levels = 3, .components_per_level = 2000,
                              .avg_nnz_per_row = 2.2, .size_jitter = 0.2,
                              .interleave = false, .seed = 21});
}

Csr LowGranularityMatrix() {
  return MakeBanded({.rows = 600, .bandwidth = 36, .fill = 0.9,
                     .force_chain = true, .seed = 22});
}

SolverOptions TestOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  return options;
}

TEST(SolverTest, SolvesWithEveryAlgorithm) {
  const Csr matrix = MakeLevelStructured({.num_levels = 5,
                                          .components_per_level = 100,
                                          .avg_nnz_per_row = 3.0,
                                          .size_jitter = 0.2,
                                          .interleave = false,
                                          .seed = 23});
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 24);
  const Solver solver(matrix, TestOptions());

  for (const Algorithm algorithm :
       {Algorithm::kSerialCpu, Algorithm::kLevelSetCpu,
        Algorithm::kSyncFreeCpu, Algorithm::kLevelSet, Algorithm::kSyncFree,
        Algorithm::kSyncFreeCsr, Algorithm::kCusparse,
        Algorithm::kCapelliniTwoPhase, Algorithm::kCapellini,
        Algorithm::kHybrid}) {
    auto result = solver.Solve(algorithm, problem.b);
    ASSERT_TRUE(result.ok())
        << AlgorithmName(algorithm) << ": " << result.status().ToString();
    EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10)
        << AlgorithmName(algorithm);
    if (IsDeviceAlgorithm(algorithm)) {
      EXPECT_GT(result->device_stats.instructions, 0u);
    }
    EXPECT_GE(result->solve_ms, 0.0);
  }
}

TEST(SolverTest, StatsAreCachedAndConsistent) {
  const Solver solver(HighGranularityMatrix(), TestOptions());
  const MatrixStats& first = solver.Stats();
  const MatrixStats& second = solver.Stats();
  EXPECT_EQ(&first, &second);  // cached
  EXPECT_EQ(first.num_levels, solver.Levels().num_levels());
  EXPECT_EQ(first.rows, solver.matrix().rows());
}

TEST(SolverTest, RecommendFollowsGranularity) {
  const Solver high(HighGranularityMatrix(), TestOptions());
  EXPECT_GT(high.Stats().parallel_granularity, kGranularityCrossover);
  EXPECT_EQ(high.Recommend(), Algorithm::kCapellini);

  const Solver low(LowGranularityMatrix(), TestOptions());
  EXPECT_LT(low.Stats().parallel_granularity, kGranularityCrossover);
  EXPECT_EQ(low.Recommend(), Algorithm::kSyncFree);
}

TEST(SelectTest, RuleMatchesFigureSix) {
  MatrixStats stats;
  stats.parallel_granularity = 0.9;
  EXPECT_EQ(SelectAlgorithm(stats), Algorithm::kCapellini);
  stats.parallel_granularity = 0.5;
  EXPECT_EQ(SelectAlgorithm(stats), Algorithm::kSyncFree);
}

TEST(AnalysisTest, ReportsIndicators) {
  const Analysis analysis = Analyze(HighGranularityMatrix(), "hg");
  EXPECT_EQ(analysis.stats.name, "hg");
  EXPECT_EQ(analysis.recommended, Algorithm::kCapellini);
  const std::string report = FormatAnalysis(analysis);
  EXPECT_NE(report.find("delta"), std::string::npos);
  EXPECT_NE(report.find("Capellini"), std::string::npos);
}

TEST(AlgorithmNamesTest, AllDistinct) {
  const Algorithm all[] = {
      Algorithm::kSerialCpu,  Algorithm::kLevelSetCpu,
      Algorithm::kSyncFreeCpu, Algorithm::kLevelSet,
      Algorithm::kSyncFree,   Algorithm::kSyncFreeCsr,
      Algorithm::kCusparse,   Algorithm::kCapelliniTwoPhase,
      Algorithm::kCapellini,  Algorithm::kHybrid};
  std::set<std::string> names;
  for (const Algorithm algorithm : all) names.insert(AlgorithmName(algorithm));
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(SolverTest, RunsOnEveryPaperPlatform) {
  const Csr matrix = MakeLevelStructured({.num_levels = 4,
                                          .components_per_level = 200,
                                          .avg_nnz_per_row = 2.5,
                                          .size_jitter = 0.2,
                                          .interleave = false,
                                          .seed = 61});
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 62);
  for (const auto& device : sim::PaperPlatforms()) {
    SolverOptions options;
    options.device = device;
    const Solver solver(matrix, options);
    auto result = solver.Solve(Algorithm::kCapellini, problem.b);
    ASSERT_TRUE(result.ok()) << device.name;
    EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10)
        << device.name;
    EXPECT_GT(result->gflops, 0.0) << device.name;
  }
}

TEST(SolverTest, DeadlockSurfacesAsStatus) {
  // The naive kernel is not exposed through Algorithm, but a Solve on a
  // device whose watchdog is impossibly tight reports deadlock rather than
  // hanging — the error path is part of the public contract.
  const Csr chain = MakeBanded({.rows = 4000, .bandwidth = 1, .fill = 1.0,
                                .force_chain = true, .seed = 63});
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.device.max_cycles = 2'000;  // far below what the chain needs
  const Solver solver(chain, options);
  const ReferenceProblem problem = MakeReferenceProblem(chain, 64);
  auto result = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlock);
}

// --- experiment driver ------------------------------------------------------

NamedMatrix SmallNamed(const char* name, Csr matrix) {
  NamedMatrix named;
  named.stats = ComputeStats(matrix, name);
  named.name = name;
  named.matrix = std::move(matrix);
  return named;
}

TEST(ExperimentTest, RunOneVerifiesSolution) {
  const NamedMatrix named = SmallNamed("hg", HighGranularityMatrix());
  const RunRecord record =
      RunOne(named, kernels::DeviceAlgorithm::kCapelliniWritingFirst,
             sim::TinyTestDevice());
  ASSERT_TRUE(record.status.ok()) << record.status.ToString();
  EXPECT_TRUE(record.correct);
  EXPECT_LE(record.max_rel_error, 1e-10);
  EXPECT_GT(record.result.gflops, 0.0);
}

TEST(ExperimentTest, RunOneRecordsDeadlocks) {
  const NamedMatrix chain = SmallNamed("chain", MakeBidiagonal(64));
  sim::DeviceConfig config = sim::TinyTestDevice();
  config.no_progress_cycles = 30'000;
  const RunRecord record =
      RunOne(chain, kernels::DeviceAlgorithm::kCapelliniNaive, config);
  EXPECT_FALSE(record.status.ok());
  EXPECT_EQ(record.status.code(), StatusCode::kDeadlock);
  EXPECT_FALSE(record.correct);
}

TEST(ExperimentTest, AggregationHelpers) {
  std::vector<NamedMatrix> corpus;
  corpus.push_back(SmallNamed("hg", HighGranularityMatrix()));
  corpus.push_back(
      SmallNamed("mid", MakeLevelStructured({.num_levels = 8,
                                             .components_per_level = 100,
                                             .avg_nnz_per_row = 3.0,
                                             .size_jitter = 0.2,
                                             .interleave = false,
                                             .seed = 30})));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };
  const auto records =
      RunMany(corpus, algorithms, sim::TinyTestDevice());
  ASSERT_EQ(records.size(), 4u);
  for (const RunRecord& record : records) {
    EXPECT_TRUE(record.status.ok()) << record.matrix;
    EXPECT_TRUE(record.correct) << record.matrix;
  }

  const double capellini_mean = MeanGflops(
      records, kernels::DeviceAlgorithm::kCapelliniWritingFirst);
  const double syncfree_mean =
      MeanGflops(records, kernels::DeviceAlgorithm::kSyncFreeCsc);
  EXPECT_GT(capellini_mean, 0.0);
  EXPECT_GT(syncfree_mean, 0.0);

  const SpeedupSummary speedup =
      Speedup(records, kernels::DeviceAlgorithm::kCapelliniWritingFirst,
              kernels::DeviceAlgorithm::kSyncFreeCsc);
  EXPECT_EQ(speedup.count, 2);
  EXPECT_GT(speedup.max, 0.0);
  EXPECT_FALSE(speedup.argmax.empty());

  const double pct = BestPercentage(
      records, kernels::DeviceAlgorithm::kCapelliniWritingFirst);
  EXPECT_GE(pct, 0.0);
  EXPECT_LE(pct, 100.0);
}

}  // namespace
}  // namespace capellini
