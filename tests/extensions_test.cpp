// Tests for the library extensions: upper-triangular solves via index
// reversal, the hybrid-threshold autotuner, structural histograms, and the
// kernel disassembler.
#include <gtest/gtest.h>

#include "core/autotune.h"
#include "core/solver.h"
#include "gen/assemble.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "graph/stats.h"
#include "host/serial.h"
#include "kernels/common.h"
#include "kernels/launch.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/disasm.h"
#include "support/rng.h"

namespace capellini {
namespace {

// --- upper-triangular solves -----------------------------------------------

TEST(UpperSolveTest, ReverseSystemIsInvolution) {
  const Csr lower = MakeLevelStructured({.num_levels = 6,
                                         .components_per_level = 60,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.3,
                                         .interleave = false,
                                         .seed = 41});
  EXPECT_EQ(ReverseSystem(ReverseSystem(lower)), lower);
}

TEST(UpperSolveTest, ReverseMapsUpperToLower) {
  const Csr lower = MakeBanded({.rows = 200, .bandwidth = 5, .fill = 0.8,
                                .force_chain = true, .seed = 42});
  const Csr upper = TransposeCsr(lower);
  ASSERT_TRUE(IsUpperTriangularWithDiagonal(upper));
  ASSERT_FALSE(upper.IsLowerTriangularWithDiagonal());

  const Csr reversed = ReverseSystem(upper);
  EXPECT_TRUE(reversed.IsLowerTriangularWithDiagonal());
  EXPECT_TRUE(reversed.Validate().ok());
}

TEST(UpperSolveTest, SolvesUpperSystemThroughReversal) {
  const Csr lower = MakeLevelStructured({.num_levels = 8,
                                         .components_per_level = 100,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.2,
                                         .interleave = false,
                                         .seed = 43});
  const Csr upper = TransposeCsr(lower);
  const auto n = static_cast<std::size_t>(upper.rows());

  // Manufacture: b = U * x_true.
  Rng rng(44);
  std::vector<Val> x_true(n);
  for (auto& v : x_true) v = rng.NextDouble(0.5, 1.5);
  std::vector<Val> b(n);
  upper.SpMv(x_true, b);

  // Solve via the documented recipe.
  const Csr as_lower = ReverseSystem(upper);
  std::vector<Val> b_reversed(n);
  ReverseVector(b, b_reversed);
  auto result = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, as_lower, b_reversed,
      sim::TinyTestDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<Val> x(n);
  ReverseVector(result->x, x);
  EXPECT_LE(MaxRelativeError(x, x_true), 1e-10);
}

TEST(UpperSolveTest, SolveUpperSystemConvenience) {
  const Csr lower = MakeLevelStructured({.num_levels = 5,
                                         .components_per_level = 150,
                                         .avg_nnz_per_row = 2.8,
                                         .size_jitter = 0.3,
                                         .interleave = false,
                                         .seed = 51});
  const Csr upper = TransposeCsr(lower);
  const auto n = static_cast<std::size_t>(upper.rows());
  Rng rng(52);
  std::vector<Val> x_true(n);
  for (auto& v : x_true) v = rng.NextDouble(0.5, 1.5);
  std::vector<Val> b(n);
  upper.SpMv(x_true, b);

  SolverOptions options;
  options.device = sim::TinyTestDevice();
  for (const Algorithm algorithm :
       {Algorithm::kCapellini, Algorithm::kSyncFree, Algorithm::kSerialCpu}) {
    auto result = SolveUpperSystem(upper, b, algorithm, options);
    ASSERT_TRUE(result.ok())
        << AlgorithmName(algorithm) << ": " << result.status().ToString();
    EXPECT_LE(MaxRelativeError(result->x, x_true), 1e-10)
        << AlgorithmName(algorithm);
  }

  // Lower input must be rejected.
  EXPECT_FALSE(SolveUpperSystem(lower, b, Algorithm::kCapellini, options).ok());
}

TEST(UpperSolveTest, IsUpperTriangularRejectsBadShapes) {
  EXPECT_FALSE(IsUpperTriangularWithDiagonal(MakeBidiagonal(8)));  // lower
  Coo coo(2, 2);
  coo.Add(0, 0, 1.0);  // row 1 missing diagonal
  coo.Add(0, 1, 1.0);
  EXPECT_FALSE(IsUpperTriangularWithDiagonal(CooToCsr(std::move(coo))));
  // Diagonal matrices are both lower- and upper-triangular.
  EXPECT_TRUE(IsUpperTriangularWithDiagonal(MakeDiagonal(4)));
}

// --- autotuner ---------------------------------------------------------------

TEST(AutotuneTest, FindsThresholdAtLeastAsGoodAsPureKernels) {
  // A mixed matrix: alternating short and wide row blocks.
  Rng rng(45);
  std::vector<std::vector<Idx>> cols(6000);
  for (Idx i = 1; i < 6000; ++i) {
    if ((i / 256) % 2 == 0) {
      cols[static_cast<std::size_t>(i)].push_back(
          static_cast<Idx>(rng.NextBounded(static_cast<std::uint64_t>(i))));
    } else {
      for (Idx c = std::max<Idx>(0, i - 20); c < i; ++c) {
        if (rng.NextBool(0.8)) cols[static_cast<std::size_t>(i)].push_back(c);
      }
    }
  }
  const Csr matrix = AssembleUnitLower(std::move(cols), 46);

  AutotuneOptions options;
  options.candidates = {4, 16, 64};
  auto result = TuneHybridThreshold(matrix, sim::TinyTestDevice(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile.size(), 3u);
  EXPECT_GT(result->best_gflops, 0.0);
  // The tuned hybrid is at least ~90% of the better pure kernel (it can
  // exceed both, but must never be far worse than max(pure)).
  const double best_pure =
      std::max(result->capellini_gflops, result->syncfree_gflops);
  EXPECT_GE(result->best_gflops, 0.9 * best_pure);
}

TEST(AutotuneTest, RejectsNonTriangular) {
  Coo coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 1, 1.0);
  EXPECT_FALSE(
      TuneHybridThreshold(CooToCsr(std::move(coo)), sim::TinyTestDevice())
          .ok());
}

// --- histograms --------------------------------------------------------------

TEST(HistogramTest, RowLengthBucketsAndPercentiles) {
  // 64 rows of length 1 (diag only) and 64 rows of length 9.
  std::vector<std::vector<Idx>> cols(128);
  for (Idx i = 64; i < 128; ++i) {
    for (Idx c = i - 8; c < i; ++c) {
      cols[static_cast<std::size_t>(i)].push_back(c);
    }
  }
  const Csr matrix = AssembleUnitLower(std::move(cols), 47);
  const Log2Histogram histogram = RowLengthHistogram(matrix);
  EXPECT_EQ(histogram.total, 128);
  EXPECT_EQ(histogram.min_value, 1);
  EXPECT_EQ(histogram.max_value, 9);
  ASSERT_GE(histogram.counts.size(), 4u);
  EXPECT_EQ(histogram.counts[0], 64);  // bucket [1,1]
  EXPECT_EQ(histogram.counts[3], 64);  // bucket [8,15]
  EXPECT_LE(histogram.Percentile(50.0), 1);
  EXPECT_GE(histogram.Percentile(90.0), 8);
  EXPECT_FALSE(histogram.ToString().empty());
}

TEST(HistogramTest, LevelSizes) {
  const Csr matrix = MakeLevelStructured({.num_levels = 10,
                                          .components_per_level = 64,
                                          .avg_nnz_per_row = 2.5,
                                          .size_jitter = 0.0,
                                          .interleave = false,
                                          .seed = 48});
  const LevelSets levels = ComputeLevelSets(matrix);
  const Log2Histogram histogram = LevelSizeHistogram(levels);
  EXPECT_EQ(histogram.total, 10);
  EXPECT_EQ(histogram.min_value, 64);
  EXPECT_EQ(histogram.max_value, 64);
}

// --- disassembler -------------------------------------------------------------

TEST(DisasmTest, AllOpcodesHaveNames) {
  for (int op = 0; op <= static_cast<int>(sim::Op::kExit); ++op) {
    EXPECT_STRNE(sim::OpName(static_cast<sim::Op>(op)), "???") << op;
  }
}

TEST(DisasmTest, FormatsBranchesWithReconvergence) {
  sim::KernelBuilder b("t", 0);
  const int r = b.R("r");
  sim::Label target = b.NewLabel();
  b.Brnz(r, target, target);
  b.Bind(target);
  b.Exit();
  const sim::Kernel kernel = b.Build();
  const std::string text = sim::FormatInstr(kernel.code[0]);
  EXPECT_NE(text.find("brnz r0 -> 1 (reconv 1)"), std::string::npos) << text;
}

TEST(DisasmTest, FormatsWholeProgram) {
  const sim::Kernel kernel = kernels::BuildCapelliniWritingFirstKernel();
  const std::string text = sim::FormatKernel(kernel);
  EXPECT_NE(text.find("capellini_writing_first"), std::string::npos);
  EXPECT_NE(text.find("ffma"), std::string::npos);
  EXPECT_NE(text.find("fence"), std::string::npos);
  // One line per instruction plus the header.
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(lines, static_cast<std::ptrdiff_t>(kernel.code.size()) + 1);
}

}  // namespace
}  // namespace capellini
