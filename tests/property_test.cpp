// Property-based sweeps: randomized matrices across seeds and structures,
// with invariants every solver must satisfy.
#include <gtest/gtest.h>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/assemble.h"
#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "gen/rmat.h"
#include "graph/dag.h"
#include "graph/levels.h"
#include "host/serial.h"
#include "kernels/launch.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/fault.h"

namespace capellini {
namespace {

/// Random matrix from a seed, varying shape family by seed % 3.
Csr RandomMatrix(std::uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return MakeRandomLower({.rows = 700 + static_cast<Idx>(seed % 701),
                              .avg_strict_nnz_per_row = 1.5 + (seed % 5),
                              .window = seed % 2 ? 64 : 0,
                              .empty_row_fraction = 0.1,
                              .seed = seed});
    case 1:
      return MakeLevelStructured(
          {.num_levels = 3 + static_cast<Idx>(seed % 14),
           .components_per_level = 20 + static_cast<Idx>(seed % 200),
           .avg_nnz_per_row = 2.0 + (seed % 4),
           .size_jitter = 0.4,
           .interleave = (seed / 3) % 2 == 1,
           .seed = seed});
    default:
      return MakeRmatLower({.nodes = 1 << (9 + static_cast<int>(seed % 3)),
                            .edges_per_node = 2.0 + (seed % 3),
                            .a = 0.57,
                            .b = 0.19,
                            .c = 0.19,
                            .seed = seed});
  }
}

class RandomizedSolve : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedSolve, StructuralInvariants) {
  const std::uint64_t seed = GetParam();
  const Csr matrix = RandomMatrix(seed);
  ASSERT_TRUE(matrix.Validate().ok());
  ASSERT_TRUE(matrix.IsLowerTriangularWithDiagonal());

  // Level sets partition rows consistently with the DAG.
  const LevelSets levels = ComputeLevelSets(matrix);
  const DependencyDag dag(matrix);
  EXPECT_EQ(dag.CriticalPathLength(), levels.num_levels());
  EXPECT_TRUE(dag.IsTopologicalOrder(levels.order));

  // CSR <-> CSC round trip is lossless.
  EXPECT_EQ(CscToCsr(CsrToCsc(matrix)), matrix);
}

TEST_P(RandomizedSolve, AllSolversAgree) {
  const std::uint64_t seed = GetParam();
  const Csr matrix = RandomMatrix(seed);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, seed ^ 0xFE);

  std::vector<Val> serial_x(problem.b.size());
  ASSERT_TRUE(host::SolveSerial(matrix, problem.b, serial_x).ok());
  EXPECT_LE(MaxRelativeError(serial_x, problem.x_true), 1e-10);

  for (const auto algorithm :
       {kernels::DeviceAlgorithm::kLevelSet,
        kernels::DeviceAlgorithm::kSyncFreeCsc,
        kernels::DeviceAlgorithm::kSyncFreeWarpCsr,
        kernels::DeviceAlgorithm::kCusparseProxy,
        kernels::DeviceAlgorithm::kCapelliniTwoPhase,
        kernels::DeviceAlgorithm::kCapelliniWritingFirst,
        kernels::DeviceAlgorithm::kHybrid}) {
    auto result = kernels::SolveOnDevice(algorithm, matrix, problem.b,
                                         sim::TinyTestDevice());
    ASSERT_TRUE(result.ok()) << kernels::DeviceAlgorithmName(algorithm)
                             << " seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_LE(MaxRelativeError(result->x, serial_x), 1e-10)
        << kernels::DeviceAlgorithmName(algorithm) << " seed " << seed;
  }
}

TEST_P(RandomizedSolve, DeterministicAcrossRuns) {
  const std::uint64_t seed = GetParam();
  const Csr matrix = RandomMatrix(seed);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, seed);
  std::uint64_t cycles[2];
  for (int run = 0; run < 2; ++run) {
    auto result = kernels::SolveOnDevice(
        kernels::DeviceAlgorithm::kCapelliniWritingFirst, matrix, problem.b,
        sim::TinyTestDevice());
    ASSERT_TRUE(result.ok());
    cycles[run] = result->stats.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSolve,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

/// The solve is exact for any dependency structure the generator cannot
/// produce: hand-crafted adversarial structures.
TEST(AdversarialStructures, FullLastRow) {
  // Last row depends on every other row.
  std::vector<std::vector<Idx>> cols(257);
  for (Idx c = 0; c < 256; ++c) cols[256].push_back(c);
  const Csr matrix = AssembleUnitLower(std::move(cols), 31);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 32);
  auto result = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, matrix, problem.b,
      sim::TinyTestDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
}

TEST(AdversarialStructures, BinaryTreeDependencies) {
  // Row i depends on rows (i-1)/2 — a binary in-tree, log depth.
  const Idx n = 1023;
  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(n));
  for (Idx i = 1; i < n; ++i) {
    cols[static_cast<std::size_t>(i)].push_back((i - 1) / 2);
  }
  const Csr matrix = AssembleUnitLower(std::move(cols), 33);
  const LevelSets levels = ComputeLevelSets(matrix);
  EXPECT_EQ(levels.num_levels(), 10);  // log2(1024)

  const ReferenceProblem problem = MakeReferenceProblem(matrix, 34);
  for (const auto algorithm :
       {kernels::DeviceAlgorithm::kCapelliniTwoPhase,
        kernels::DeviceAlgorithm::kCapelliniWritingFirst,
        kernels::DeviceAlgorithm::kSyncFreeCsc}) {
    auto result = kernels::SolveOnDevice(algorithm, matrix, problem.b,
                                         sim::TinyTestDevice());
    ASSERT_TRUE(result.ok());
    EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);
  }
}

TEST(AdversarialStructures, AllRowsDependOnRowZero) {
  // Fan-out hub: maximal successor list for one component.
  const Idx n = 2000;
  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(n));
  for (Idx i = 1; i < n; ++i) cols[static_cast<std::size_t>(i)].push_back(0);
  const Csr matrix = AssembleUnitLower(std::move(cols), 35);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 36);
  auto result = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, matrix, problem.b,
      sim::TinyTestDevice());
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MaxRelativeError(result->x, problem.x_true), 1e-10);

  const DependencyDag dag(matrix);
  EXPECT_EQ(dag.Successors(0).size(), static_cast<std::size_t>(n - 1));
}

/// Reliability property (core/verify.h): every algorithm's solution passes
/// the residual check on every random structure — the check accepts all
/// honest work, so any rejection in the fault tests is the fault's doing.
TEST_P(RandomizedSolve, EveryAlgorithmPassesTheResidualCheck) {
  const std::uint64_t seed = GetParam();
  const Csr matrix = RandomMatrix(seed);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, seed ^ 0xAB);
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  const Solver solver(Csr(matrix), options);
  for (const Algorithm algorithm :
       {Algorithm::kSerialCpu, Algorithm::kLevelSet, Algorithm::kSyncFreeCsr,
        Algorithm::kCapelliniTwoPhase, Algorithm::kCapellini}) {
    auto result = solver.Solve(algorithm, problem.b);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm) << " seed " << seed;
    const Verification verdict =
        VerifySolution(matrix, problem.b, result->x);
    EXPECT_TRUE(verdict.passed)
        << AlgorithmName(algorithm) << " seed " << seed << " residual "
        << verdict.residual;
  }
}

/// Reliability property (sim/fault.h): one dropped flag publish on a chain
/// matrix starves every dependent row — raw kCapellini fails (the watchdog
/// converts the stall to kDeadlock) while SolveReliable spends the fault
/// budget on rung 0 and recovers on a clean retry rung.
TEST_P(RandomizedSolve, SingleFlagDropFailsRawButNotReliable) {
  const std::uint64_t seed = GetParam();
  const Csr matrix = MakeBidiagonal(96 + static_cast<Idx>(seed * 8), seed);
  const ReferenceProblem problem = MakeReferenceProblem(matrix, seed ^ 0xCD);

  sim::FaultPlan plan;
  plan.seed = seed;
  plan.drop_publish_rate = 1.0;
  plan.max_faults = 1;  // exactly the first publish vanishes
  sim::FaultInjector injector(plan);
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.device.no_progress_cycles = 30'000;
  options.kernel_options.fault_injector = &injector;
  const Solver solver(Csr(matrix), options);

  auto raw = solver.Solve(Algorithm::kCapellini, problem.b);
  ASSERT_FALSE(raw.ok()) << "seed " << seed;
  EXPECT_EQ(raw.status().code(), StatusCode::kDeadlock);

  injector.Reseed(plan);
  auto reliable = solver.SolveReliable(Algorithm::kCapellini, problem.b);
  ASSERT_TRUE(reliable.ok()) << "seed " << seed;
  EXPECT_TRUE(reliable->verified);
  EXPECT_EQ(reliable->attempts.front().status, StatusCode::kDeadlock);
  EXPECT_LE(MaxRelativeError(reliable->solve.x, problem.x_true), 1e-10);
}

/// Equation-1 invariance: granularity is unchanged by value changes (it is
/// purely structural).
TEST(GranularityProperties, ValueIndependent) {
  Csr a = RandomMatrix(5);
  const MatrixStats before = ComputeStats(a, "a");
  auto values = a.mutable_val();
  for (auto& v : values) v *= 3.25;
  const MatrixStats after = ComputeStats(a, "a");
  EXPECT_DOUBLE_EQ(before.parallel_granularity, after.parallel_granularity);
  EXPECT_EQ(before.num_levels, after.num_levels);
}

}  // namespace
}  // namespace capellini
